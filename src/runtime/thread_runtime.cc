#include "runtime/thread_runtime.h"

#include <algorithm>

#include "common/assert.h"

namespace paris::runtime {

namespace {
constexpr std::uint64_t kNoDeadline = ~0ull;
/// The Worker whose loop runs on this thread (null on the main thread and
/// on the pump thread) — lets enqueue_message tell owner-thread sends,
/// which may touch the worker's parked queue directly, from foreign-thread
/// sends, which must go through the mailbox.
thread_local const void* t_worker = nullptr;
/// How soon a worker with parked (backpressured) envelopes re-tries the
/// router; the pump drains rings continuously, so this is the worst-case
/// added latency per refused batch, not a rate limit.
constexpr std::uint64_t kParkRetryUs = 200;
}

ThreadBackend::ThreadBackend(Options opt)
    : rng_(opt.seed), epoch_(std::chrono::steady_clock::now()) {
  const std::uint32_t w = opt.workers == 0 ? 1 : opt.workers;
  workers_.reserve(w);
  for (std::uint32_t i = 0; i < w; ++i) workers_.push_back(std::make_unique<Worker>());
}

ThreadBackend::~ThreadBackend() { stop(); }

std::uint64_t ThreadBackend::now_us() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - epoch_)
                                        .count());
}

NodeId ThreadBackend::add_node(Actor* actor, DcId dc, ServiceFn /*service*/,
                               NodeId colocate_with) {
  PARIS_CHECK(actor != nullptr);
  PARIS_CHECK_MSG(!started_, "add_node after the thread backend started");
  std::uint32_t worker;
  if (colocate_with != kInvalidNode) {
    PARIS_DCHECK(colocate_with < nodes_.size());
    worker = nodes_[colocate_with].worker;
  } else if (router_ != nullptr &&
             !router_->is_local(static_cast<NodeId>(nodes_.size()))) {
    // Remote nodes (the socket backend records their ownership before
    // calling here, so the router can already classify the id being
    // assigned) must not consume round-robin slots: only nodes that will
    // actually execute locally spread across the workers.
    worker = 0;
  } else {
    worker = next_anchor_++ % static_cast<std::uint32_t>(workers_.size());
  }
  nodes_.push_back(Node{actor, dc, worker, colocate_with});
  return static_cast<NodeId>(nodes_.size() - 1);
}

// ---------------------------------------------------------------------------
// Mailbox.
// ---------------------------------------------------------------------------

ThreadBackend::Envelope ThreadBackend::take_envelope(Worker& w) {
  std::lock_guard<std::mutex> lk(w.mu);
  if (w.free.empty()) return Envelope{};
  Envelope env = std::move(w.free.back());
  w.free.pop_back();
  return env;
}

void ThreadBackend::enqueue(Worker& w, Envelope env) {
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.inbox.push_back(std::move(env));
  }
  w.cv.notify_one();
}

void ThreadBackend::enqueue_message(NodeId from, NodeId to, const wire::Message& msg,
                                    std::uint64_t deliver_at_us) {
  if (router_ != nullptr && !router_->is_local(to)) {
    if (deliver_at_us == 0) {
      // Immediate remote send: encode into a thread-local scratch buffer
      // (keeps its capacity, so the remote fast path allocates nothing in
      // steady state) and hand it straight to the router. The copy into an
      // envelope happens only on the slow path: a refusal (destination ring
      // at its byte budget), or earlier envelopes to this destination
      // already parked — bypassing them would break per-channel FIFO.
      thread_local std::vector<std::uint8_t> scratch;
      scratch.clear();
      wire::encode_message(msg, scratch);
      bytes_sent_.fetch_add(scratch.size(), std::memory_order_relaxed);
      Worker& sw = *workers_[nodes_[from].worker];
      // The parked queue is owner-only state. A send from a foreign thread
      // (tests and setup helpers; protocol sends always run on the from-
      // node's worker) routes through sw's mailbox instead, and deliver()
      // forwards or parks it on the owning thread.
      if (started_ && t_worker != &sw) {
        Envelope env = take_envelope(sw);
        env.from = from;
        env.to = to;
        env.deliver_at_us = 0;
        env.remote = true;
        env.bytes.assign(scratch.begin(), scratch.end());
        enqueue(sw, std::move(env));
        return;
      }
      if (sw.parked_dst.find(to) == sw.parked_dst.end() &&
          router_->forward(from, to, scratch)) {
        return;
      }
      Envelope env = take_envelope(sw);
      env.from = from;
      env.to = to;
      env.deliver_at_us = 0;
      env.remote = true;
      env.bytes.assign(scratch.begin(), scratch.end());
      park_remote(sw, std::move(env));
      return;
    }
    // Timed remote send (latency decorators model the one-way WAN delay on
    // the SENDER's clock): park the encoded frame at the sender's own
    // worker until due, then deliver() forwards it to the router. The
    // per-channel clamp already ran in send_at, so wire order per channel
    // still matches deadline order.
    Worker& sw = *workers_[nodes_[from].worker];
    Envelope env = take_envelope(sw);
    env.from = from;
    env.to = to;
    env.deliver_at_us = deliver_at_us;
    env.remote = true;
    PARIS_DCHECK(env.bytes.empty());
    wire::encode_message(msg, env.bytes);
    bytes_sent_.fetch_add(env.bytes.size(), std::memory_order_relaxed);
    enqueue(sw, std::move(env));
    return;
  }
  // Encode on the sending thread, directly into a recycled envelope whose
  // byte buffer keeps its grown capacity; the receiver decodes into its
  // own pool, so messages and pools never cross threads.
  Worker& w = *workers_[nodes_[to].worker];
  Envelope env = take_envelope(w);
  env.from = from;
  env.to = to;
  env.deliver_at_us = deliver_at_us;
  PARIS_DCHECK(env.bytes.empty());  // consumer clears before recycling
  wire::encode_message(msg, env.bytes);
  bytes_sent_.fetch_add(env.bytes.size(), std::memory_order_relaxed);
  enqueue(w, std::move(env));
}

void ThreadBackend::send(NodeId from, NodeId to, wire::MessagePtr msg) {
  PARIS_DCHECK(from < nodes_.size() && to < nodes_.size());
  PARIS_DCHECK(msg != nullptr);
  enqueue_message(from, to, *msg, /*deliver_at_us=*/0);
}

void ThreadBackend::send_at(NodeId from, NodeId to, wire::MessagePtr msg,
                            std::uint64_t at_us) {
  PARIS_DCHECK(from < nodes_.size() && to < nodes_.size());
  PARIS_DCHECK(msg != nullptr);
  // Clamp the channel's deliver-at to be strictly increasing (the sender's
  // worker owns this channel's clamp state: sends run on the from-node's
  // worker, or on the main thread before start). Jitter or chaos stalls can
  // therefore reorder deliveries ACROSS channels but never within one —
  // exactly the paper's TCP FIFO assumption.
  Worker& sw = *workers_[nodes_[from].worker];
  std::uint64_t& last = sw.last_arrival[channel_key(from, to)];
  if (at_us <= last) at_us = last + 1;
  last = at_us;
  enqueue_message(from, to, *msg, at_us);
}

void ThreadBackend::inject_encoded(NodeId from, NodeId to, const std::uint8_t* data,
                                   std::size_t n) {
  PARIS_DCHECK(from < nodes_.size() && to < nodes_.size());
  PARIS_DCHECK(router_ == nullptr || router_->is_local(to));
  Worker& w = *workers_[nodes_[to].worker];
  Envelope env = take_envelope(w);
  env.from = from;
  env.to = to;
  env.deliver_at_us = 0;
  env.bytes.assign(data, data + n);
  enqueue(w, std::move(env));
}

void ThreadBackend::defer(NodeId actor, std::function<void()> fn) {
  PARIS_DCHECK(actor < nodes_.size());
  PARIS_CHECK_MSG(local(actor), "defer/post to a node hosted by another process");
  Worker& w = *workers_[nodes_[actor].worker];
  Envelope env = take_envelope(w);
  env.from = actor;
  env.to = actor;
  env.deliver_at_us = 0;  // tasks are never timed
  env.task = std::move(fn);
  enqueue(w, std::move(env));
}

wire::MessagePool& ThreadBackend::msg_pool(NodeId self) {
  PARIS_DCHECK(self < nodes_.size());
  return workers_[nodes_[self].worker]->pool;
}

// ---------------------------------------------------------------------------
// Timers.
// ---------------------------------------------------------------------------

std::uint64_t ThreadBackend::start_periodic(NodeId actor, std::uint64_t period_us,
                                            std::uint64_t phase_us,
                                            std::function<void()> fn) {
  PARIS_DCHECK(actor < nodes_.size());
  PARIS_CHECK(period_us > 0);
  // Timers of remote nodes never fire here: their process runs them. Id 0
  // is the "no timer" handle — cancel_periodic(0) is a harmless miss.
  if (!local(actor)) return 0;
  Worker& w = *workers_[nodes_[actor].worker];
  auto rec = std::make_shared<TimerRec>();
  rec->period_us = period_us;
  rec->fn = std::move(fn);
  const std::uint64_t id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timer_recs_.emplace(id, rec);
  }
  // Heap access is single-threaded: before start() only the main thread
  // touches it; afterwards only the owning worker may create timers.
  PARIS_CHECK_MSG(!started_ || std::this_thread::get_id() == w.thread.get_id(),
                  "runtime timer creation from a foreign thread");
  w.timers.push(TimerEntry{now_us() + phase_us, std::move(rec)});
  return id;
}

void ThreadBackend::cancel_periodic(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(timer_mu_);
  const auto it = timer_recs_.find(id);
  if (it == timer_recs_.end()) return;
  it->second->cancelled.store(true, std::memory_order_relaxed);
  timer_recs_.erase(it);
}

// ---------------------------------------------------------------------------
// Worker loop / lifecycle.
// ---------------------------------------------------------------------------

void ThreadBackend::deliver(Worker& w, Envelope& env) {
  if (env.task) {
    env.task();
    env.task = nullptr;
  } else if (env.remote) {
    // A parked timed send to a node another process hosts, now due: hand
    // the already-encoded bytes across the process boundary. FIFO per
    // destination: if earlier envelopes to this destination are parked, or
    // the router refuses (ring at budget), park this one behind them and
    // leave a husk so the caller skips the recycle.
    if (w.parked_dst.find(env.to) != w.parked_dst.end() ||
        !router_->forward(env.from, env.to, env.bytes)) {
      park_remote(w, std::move(env));
      env.to = kInvalidNode;
      env.bytes.clear();
      return;  // delivery happens when the ring drains, not now
    }
    env.remote = false;
  } else {
    wire::Decoder dec(env.bytes);
    const wire::MessagePtr msg = wire::decode_message_pooled(dec, w.pool);
    PARIS_DCHECK(dec.done());
    nodes_[env.to].actor->on_message(env.from, *msg);
  }
  env.bytes.clear();  // keep capacity for reuse
  env.deliver_at_us = 0;
  w.events.fetch_add(1, std::memory_order_relaxed);
}

/// Delivers every parked timed envelope that is due, staging it for
/// recycling. Per-channel order is safe: the sender clamps deliver-at
/// strictly increasing per channel, so a channel's next envelope is never
/// due before its predecessor.
void ThreadBackend::release_due_held(Worker& w, std::uint64_t now) {
  while (!w.held.empty() && w.held.front().deliver_at_us <= now) {
    std::pop_heap(w.held.begin(), w.held.end(), LaterDelivery{});
    Envelope env = std::move(w.held.back());
    w.held.pop_back();
    deliver(w, env);
    // A husk (to == kInvalidNode) means deliver() parked the envelope for a
    // backpressure retry; only real envelopes recycle.
    if (env.to != kInvalidNode) w.done.push_back(std::move(env));
  }
}

void ThreadBackend::park_remote(Worker& w, Envelope&& env) {
  // Per-worker bound on parked bytes: backpressure must cap memory, not
  // relocate the blowup. The reliable layer's in-flight cap keeps well
  // under this in practice; shedding beyond it is honest loss that
  // retransmission re-covers.
  constexpr std::size_t kParkedBytesCap = 8u << 20;
  router_parks_.fetch_add(1, std::memory_order_relaxed);
  if (w.parked_bytes + env.bytes.size() > kParkedBytesCap) {
    router_park_drops_.fetch_add(1, std::memory_order_relaxed);
    env.bytes.clear();
    env.remote = false;
    env.deliver_at_us = 0;
    w.done.push_back(std::move(env));
    return;
  }
  w.parked_bytes += env.bytes.size();
  ++w.parked_dst[env.to];
  w.parked.push_back(std::move(env));
}

void ThreadBackend::flush_parked(Worker& w) {
  if (w.parked.empty()) return;
  // One rotation over the queue: forward each envelope unless its
  // destination already refused this pass. Same-destination order is
  // preserved (refusal parks the whole run again); other destinations
  // proceed independently, so one stalled peer never blocks the rest.
  std::vector<NodeId> refused;
  const std::size_t n = w.parked.size();
  for (std::size_t i = 0; i < n; ++i) {
    Envelope env = std::move(w.parked.front());
    w.parked.pop_front();
    const bool blocked =
        std::find(refused.begin(), refused.end(), env.to) != refused.end();
    if (!blocked && router_->forward(env.from, env.to, env.bytes)) {
      w.parked_bytes -= env.bytes.size();
      const auto it = w.parked_dst.find(env.to);
      if (--it->second == 0) w.parked_dst.erase(it);
      env.bytes.clear();
      env.remote = false;
      env.deliver_at_us = 0;
      w.events.fetch_add(1, std::memory_order_relaxed);
      w.done.push_back(std::move(env));
      continue;
    }
    if (!blocked) refused.push_back(env.to);
    w.parked.push_back(std::move(env));
  }
}

void ThreadBackend::worker_main(Worker& w) {
  t_worker = &w;
  while (running_.load(std::memory_order_acquire)) {
    // Drain the mailbox in one batched swap.
    w.batch.clear();
    {
      std::unique_lock<std::mutex> lk(w.mu);
      if (w.inbox.empty()) {
        std::uint64_t next = w.timers.empty() ? kNoDeadline : w.timers.top().deadline_us;
        if (!w.held.empty()) next = std::min(next, w.held.front().deliver_at_us);
        // Backpressure retry cadence: while envelopes are parked, poll the
        // router again soon instead of sleeping on the cv — the peer's ring
        // drains from the pump thread, which has no handle to wake us.
        if (!w.parked.empty()) next = std::min(next, now_us() + kParkRetryUs);
        if (next == kNoDeadline) {
          w.cv.wait(lk, [&] {
            return !w.inbox.empty() || !running_.load(std::memory_order_acquire);
          });
        } else if (next > now_us()) {
          w.cv.wait_until(lk, epoch_ + std::chrono::microseconds(next), [&] {
            return !w.inbox.empty() || !running_.load(std::memory_order_acquire);
          });
        }
      }
      std::swap(w.inbox, w.batch);
    }

    // Backpressured envelopes retry before anything newer delivers.
    flush_parked(w);

    // Parked timed envelopes that came due arrived (on their channels)
    // before anything in this batch: release them first. ONE time snapshot
    // covers the release and the whole batch — re-reading the clock per
    // envelope would open a FIFO hole: a channel's earlier envelope parked
    // at `now`, then the clock advancing past its successor's deadline
    // mid-batch would deliver the successor inline while the predecessor
    // still sits in the heap. With a single snapshot, any envelope newer
    // than a parked same-channel predecessor is parked too (deadlines are
    // strictly increasing per channel) and released in heap order.
    const std::uint64_t batch_now = now_us();
    release_due_held(w, batch_now);
    for (Envelope& env : w.batch) {
      if (env.deliver_at_us > batch_now) {
        w.held.push_back(std::move(env));
        std::push_heap(w.held.begin(), w.held.end(), LaterDelivery{});
        env.to = kInvalidNode;  // moved-from slot: skip the recycle below
        continue;
      }
      deliver(w, env);
    }
    for (Envelope& env : w.batch) {
      if (env.to != kInvalidNode) w.done.push_back(std::move(env));
    }
    w.batch.clear();
    release_due_held(w, now_us());
    if (!w.done.empty()) {
      std::lock_guard<std::mutex> lk(w.mu);
      for (Envelope& env : w.done) w.free.push_back(std::move(env));
      w.done.clear();
    }

    // Fire due timers; a periodic entry reschedules itself.
    while (!w.timers.empty() && w.timers.top().deadline_us <= now_us()) {
      TimerEntry e = w.timers.top();
      w.timers.pop();
      if (e.rec->cancelled.load(std::memory_order_relaxed)) continue;
      e.rec->fn();
      w.events.fetch_add(1, std::memory_order_relaxed);
      e.deadline_us += e.rec->period_us;
      w.timers.push(std::move(e));
    }
  }
}

void ThreadBackend::start() {
  PARIS_CHECK_MSG(!stopped_, "thread backend restarted after stop(); runs are one-shot");
  if (started_) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    Worker* wp = w.get();
    w->thread = std::thread([this, wp] { worker_main(*wp); });
  }
}

void ThreadBackend::run_for(std::uint64_t us) {
  start();
  const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  std::this_thread::sleep_until(until);
}

void ThreadBackend::stop() {
  stopped_ = true;
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lk(w->mu);  // pairs with the cv predicate
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

std::uint64_t ThreadBackend::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& w : workers_) n += w->events.load(std::memory_order_relaxed);
  return n;
}

}  // namespace paris::runtime
