#include "runtime/latency_transport.h"

namespace paris::runtime {

const char* latency_model_name(LatencyModelKind k) {
  switch (k) {
    case LatencyModelKind::kNone:
      return "none";
    case LatencyModelKind::kMatrix:
      return "matrix";
    case LatencyModelKind::kJitter:
      return "jitter";
  }
  return "?";
}

LatencyTransport::LatencyTransport(Transport& inner, Executor& exec,
                                   sim::LatencyModel model, std::uint64_t seed)
    : TransportDecorator(inner),
      exec_(exec),
      model_(std::move(model)),
      draws_(splitmix64(seed ^ 0x6c61746e63794c54ull)) {}  // salt: "latncyLT"

std::uint64_t LatencyTransport::sample_one_way_us(NodeId from, NodeId to) {
  const std::uint64_t mean = inner_.colocated(from, to)
                                 ? model_.loopback_us()
                                 : model_.mean_one_way_us(dc_of(from), dc_of(to));
  if (model_.jitter() <= 0) return mean;
  // mean * U[1-j, 1+j], matching sim::LatencyModel::sample_one_way_us.
  const double u = draws_.next(from, to);
  const double factor = 1.0 + (u * 2.0 - 1.0) * model_.jitter();
  const auto v = static_cast<std::uint64_t>(static_cast<double>(mean) * factor);
  return v == 0 ? 1 : v;
}

ChaosTransport::ChaosTransport(Transport& inner, Executor& exec, ChaosConfig cfg)
    : TransportDecorator(inner),
      exec_(exec),
      cfg_(cfg),
      draws_(splitmix64(cfg.seed ^ 0x6368616f73545058ull)) {}  // salt: "chaosTPX"

const char* chaos_drop_class_name(ChaosDropClass c) {
  switch (c) {
    case ChaosDropClass::kReplication:
      return "replication";
    case ChaosDropClass::kRequests:
      return "requests";
    case ChaosDropClass::kAll:
      return "all";
  }
  return "?";
}

namespace {
/// The idempotent replication/stabilization layer: duplicates merge away
/// (monotonic vv max, (ut, tx, sr)-deduplicated store applies). Request/
/// response and 2PC traffic is NOT idempotent — duplicating or dropping it
/// without a reliability layer above would wedge transactions rather than
/// test convergence.
bool replication_layer(wire::MsgType t) {
  return t == wire::MsgType::kReplicateBatch || t == wire::MsgType::kHeartbeat;
}

/// Classifies by the carried protocol message: reliable frames count as
/// their inner type; bare acks have no protocol class.
bool replication_layer_of(const wire::Message& m) {
  wire::MsgType t = m.type();
  if (t == wire::MsgType::kReliableAck) return false;
  if (t == wire::MsgType::kReliableFrame) {
    t = static_cast<wire::MsgType>(static_cast<const wire::ReliableFrame&>(m).inner_type);
  }
  return replication_layer(t);
}

bool drop_eligible(const wire::Message& m, ChaosDropClass c) {
  switch (c) {
    case ChaosDropClass::kReplication:
      return replication_layer_of(m);
    case ChaosDropClass::kRequests:
      return m.type() != wire::MsgType::kReliableAck && !replication_layer_of(m);
    case ChaosDropClass::kAll:
      return true;
  }
  return false;
}
}  // namespace

bool idempotent_message_class(const wire::Message& m) { return replication_layer_of(m); }

void ChaosTransport::send_at(NodeId from, NodeId to, wire::MessagePtr msg,
                             std::uint64_t at_us) {
  if (cfg_.drop_p > 0 && drop_eligible(*msg, cfg_.drop_class) &&
      draws_.next(from, to) < cfg_.drop_p) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.dropped;
    return;  // msg released, never delivered
  }
  const bool idempotent = replication_layer_of(*msg);
  if (idempotent && cfg_.duplicate_p > 0 && draws_.next(from, to) < cfg_.duplicate_p) {
    inner_.send_at(from, to, msg, at_us);  // copy of the handle, same payload
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.duplicated;
  }
  if (cfg_.reorder_p > 0 && draws_.next(from, to) < cfg_.reorder_p) {
    at_us += cfg_.reorder_stall_us;  // TCP stall; later channels overtake
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.stalled;
  }
  inner_.send_at(from, to, std::move(msg), at_us);
}

ChaosTransport::Stats ChaosTransport::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace paris::runtime
