#pragma once
// ProcessGroup: a small launcher/registry for the socket runtime's child
// processes. The launcher re-executes ITS OWN binary (/proc/self/exe) with a
// child marker argv — any binary that can run a socket deployment calls
// workload::maybe_run_socket_child() first thing in main(), which intercepts
// that marker — so paris_sim, benches and tools all self-spawn without a
// separate worker binary. Each child's stdout/stderr is redirected to a log
// file (CI uploads them as artifacts on failure).

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace paris::runtime {

class ProcessGroup {
 public:
  struct Child {
    std::uint32_t rank = 0;
    pid_t pid = -1;
    std::string log_path;
    int exit_code = -1;  ///< -1 until reaped; 128+sig for signal deaths
  };

  ~ProcessGroup();  // kills stragglers

  /// fork + redirect stdout/stderr to log_path + exec /proc/self/exe with
  /// `args` (argv[1..]; argv[0] is the binary itself). Returns false if the
  /// fork/exec plumbing fails.
  bool spawn(std::uint32_t rank, const std::vector<std::string>& args,
             const std::string& log_path);

  /// Reaps every child, failing fast: any nonzero exit kills the remaining
  /// children immediately (a wedged peer must not eat the CI job limit),
  /// and `timeout_ms` bounds the whole wait. Returns true when ALL children
  /// exited zero; otherwise `error` names the first failure.
  bool wait_all(std::uint64_t timeout_ms, std::string& error);

  void kill_all();
  const std::vector<Child>& children() const { return children_; }

 private:
  std::vector<Child> children_;
};

}  // namespace paris::runtime
