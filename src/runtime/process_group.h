#pragma once
// ProcessGroup: a small launcher/registry for the socket runtime's child
// processes. The launcher re-executes ITS OWN binary (/proc/self/exe) with a
// child marker argv — any binary that can run a socket deployment calls
// workload::maybe_run_socket_child() first thing in main(), which intercepts
// that marker — so paris_sim, benches and tools all self-spawn without a
// separate worker binary. Each child's stdout/stderr is redirected to a log
// file (CI uploads them as artifacts on failure).
//
// Two wait disciplines:
//  * wait_all — fail-fast: the first nonzero exit kills the group. CI
//    exactness jobs use this so a wedged peer cannot eat the job limit.
//  * wait_supervised — self-healing: a dead child is respawned (bounded by
//    max_respawns, per-rank doubling backoff) with a fresh incarnation
//    number; the caller's RespawnFn builds the new argv (carrying the
//    incarnation epoch into the socket hello). A kill schedule lets tests
//    SIGKILL a rank mid-run to exercise the recovery path.
//
// Children are shielded against launcher death: PR_SET_PDEATHSIG delivers
// SIGKILL if the launcher dies, and SIGINT/SIGTERM on the launcher are
// forwarded to all live children, so an interrupted run never leaks orphan
// ranks holding ports.

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace paris::runtime {

class ProcessGroup {
 public:
  struct Child {
    std::uint32_t rank = 0;
    std::uint32_t incarnation = 0;  ///< 0 for the initial spawn, +1 per respawn
    pid_t pid = -1;
    std::string log_path;
    int exit_code = -1;  ///< -1 until reaped; 128+sig for signal deaths
  };

  /// Builds the argv (argv[1..]) and log path for a respawned incarnation
  /// of `rank`. `incarnation` is >= 1 (the initial spawn was 0).
  using RespawnFn = std::function<std::vector<std::string>(
      std::uint32_t rank, std::uint32_t incarnation, std::string& log_path)>;

  struct SuperviseOptions {
    std::uint32_t max_respawns = 2;       ///< total budget across the group
    std::uint64_t backoff_base_ms = 100;  ///< first respawn delay, doubled per rank
    std::uint64_t backoff_cap_ms = 2000;
    RespawnFn respawn;  ///< required: builds the new incarnation's argv
  };

  /// One scheduled fault: SIGKILL `rank` once `after_ms` of supervised wait
  /// have elapsed. `fired` is set by wait_supervised.
  struct KillEvent {
    std::uint32_t rank = 0;
    std::uint64_t after_ms = 0;
    bool fired = false;
  };

  ~ProcessGroup();  // kills stragglers

  /// fork + redirect stdout/stderr to log_path + exec /proc/self/exe with
  /// `args` (argv[1..]; argv[0] is the binary itself). Returns false if the
  /// fork/exec plumbing fails.
  bool spawn(std::uint32_t rank, const std::vector<std::string>& args,
             const std::string& log_path, std::uint32_t incarnation = 0);

  /// Reaps every child, failing fast: any nonzero exit kills the remaining
  /// children immediately (a wedged peer must not eat the CI job limit),
  /// and `timeout_ms` bounds the whole wait. Returns true when ALL children
  /// exited zero; otherwise `error` names the first failure.
  bool wait_all(std::uint64_t timeout_ms, std::string& error);

  /// Supervised reap: fires the kill schedule, respawns dead children via
  /// opts.respawn (respecting the respawn budget and per-rank backoff) and
  /// returns true when the LAST incarnation of every rank exited zero.
  bool wait_supervised(std::uint64_t timeout_ms, const SuperviseOptions& opts,
                       std::vector<KillEvent>& kills, std::string& error);

  void kill_all();
  const std::vector<Child>& children() const { return children_; }
  std::uint32_t respawns() const { return respawns_; }

 private:
  void register_forwarding(std::size_t slot, pid_t pid);

  std::vector<Child> children_;
  std::uint32_t respawns_ = 0;
};

}  // namespace paris::runtime
