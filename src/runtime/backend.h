#pragma once
// Backend: one runnable runtime under a deployment — actor registry +
// Executor + Transport + the run loop. Two implementations:
//
//  * SimBackend (runtime/sim_runtime.h): the deterministic single-threaded
//    discrete-event simulator; a run is a pure function of config and seed.
//  * ThreadBackend (runtime/thread_runtime.h): real worker threads, MPSC
//    mailboxes, steady-clock timers; genuinely parallel, not deterministic.
//
// Protocol code (ServerBase, Client, Deployment, workload driver) sees only
// Executor/Transport/Backend, never the concrete sim types.

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/actor.h"
#include "runtime/executor.h"
#include "runtime/transport.h"

namespace paris::runtime {

enum class Kind { kSim, kThreads, kSockets };

inline const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSim:
      return "sim";
    case Kind::kThreads:
      return "threads";
    case Kind::kSockets:
      return "sockets";
  }
  return "?";
}

class Backend {
 public:
  virtual ~Backend() = default;

  virtual Kind kind() const = 0;
  virtual Executor& exec() = 0;
  virtual Transport& transport() = 0;

  /// Deterministic RNG the deployment draws clock samples and timer phases
  /// from. For the sim backend this is the simulation's own RNG, so the
  /// draw sequence — and thus byte-identical sim output — is preserved.
  virtual Rng& rng() = 0;

  /// Registers an actor; returns its node id. `service` models per-message
  /// CPU cost (sim only). `colocate_with` pins the actor to an existing
  /// node's execution context and loopback link (client ↔ coordinator).
  /// Must be called before the first run_for().
  virtual NodeId add_node(Actor* actor, DcId dc, ServiceFn service,
                          NodeId colocate_with = kInvalidNode) = 0;

  /// Advances the deployment by `us` µs: runs the event loop (sim) or
  /// sleeps wall-clock while worker threads process (threads; the first
  /// call spawns the workers).
  virtual void run_for(std::uint64_t us) = 0;

  /// Stops and joins worker threads (no-op for sim). Must be called before
  /// inspecting server/client state of a threads deployment; idempotent.
  virtual void stop() = 0;

  /// Events (sim) or messages + timer fires (threads) processed so far.
  virtual std::uint64_t events_executed() const = 0;

  /// True when node `n` is hosted by THIS backend instance. Single-process
  /// backends host everything; the socket backend hosts only the nodes its
  /// process rank owns (remote nodes are registered for id/topology
  /// alignment but never execute here).
  virtual bool local(NodeId n) const {
    (void)n;
    return true;
  }
};

}  // namespace paris::runtime
