#pragma once
// FuzzTransport: stateful fuzzing of LIVE channels (DESIGN.md §13).
//
// PR 6 proved the decoder robust against every single-byte flip and
// truncation of one encoded message, offline. This decorator generalizes
// that mutator to a running cluster: it sits UNDER the reliable layer
//
//   protocol -> Reliable -> [Fuzz] -> Chaos -> ... -> backend
//
// so the traffic it sees is exactly what crosses a real wire (sequenced
// ReliableFrames and acks when --reliable is on), and it injects two fault
// classes:
//
//  * CORRUPTION (corrupt_p): the message is encoded, mutated (bit flip,
//    truncation, or a splice with a previously captured frame on the same
//    channel), and the mutated bytes are pushed through
//    wire::validate_encoded_message — and, when validation accepts, through
//    a full pooled decode — asserting the parsing stack cannot crash on
//    adversarial bytes no matter what state the run is in. The ORIGINAL
//    message is then dropped: TCP checksums turn corruption into loss, so
//    a corrupted frame must behave exactly like a dropped one (the reliable
//    layer retransmits; without it, corruption is honest loss the checker
//    may flag). Mutated bytes are NEVER delivered to the protocol — a
//    mutation that happens to re-validate decodes to a message no peer
//    sent, which no checksum-protected transport can produce.
//  * REPLAY (replay_p): a previously captured frame from the same channel
//    is re-decoded and delivered AGAIN, out of phase with the live stream.
//    The reliable endpoint's dedup (or the idempotent replication layer's
//    (ut, tx, sr) dedup) must absorb it; only frame types that are safe to
//    duplicate are captured (reliable frames, acks, replication layer).
//
// Every rejection/acceptance path is counted so runs can assert the fuzz
// actually exercised the machinery. Draws use the counter-hash idiom:
// deterministic per (seed, channel, channel send index) on every backend.

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/latency_transport.h"

namespace paris::runtime {

struct FuzzConfig {
  double corrupt_p = 0;  ///< probability a message is mutated-then-dropped
  double replay_p = 0;   ///< probability a captured frame is re-delivered
  std::uint64_t seed = 0;  ///< 0: the deployment substitutes its own seed
  /// Frames larger than this are not captured for splice/replay (bounds the
  /// per-channel stash; snapshot chunks need not apply).
  std::uint32_t max_capture_bytes = 2048;

  bool enabled() const { return corrupt_p > 0 || replay_p > 0; }
};

class FuzzTransport final : public TransportDecorator {
 public:
  struct Stats {
    std::uint64_t mutated = 0;           ///< messages corrupted (then dropped)
    std::uint64_t flips = 0;             ///< ... by bit flip
    std::uint64_t truncations = 0;       ///< ... by truncation
    std::uint64_t splices = 0;           ///< ... by splice/cross-over
    std::uint64_t rejected_validate = 0; ///< mutants validate_encoded_message refused
    std::uint64_t accepted_validate = 0; ///< mutants that still parsed (then discarded)
    std::uint64_t replays = 0;           ///< captured frames re-delivered
    std::uint64_t captured = 0;          ///< frames stashed for splice/replay
  };

  FuzzTransport(Transport& inner, Executor& exec, FuzzConfig cfg);

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    send_at(from, to, std::move(msg), exec_.now_us());
  }
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override;

  Stats stats() const;

 private:
  /// Mutates `buf` in place (kind drawn from u); returns the mutation kind
  /// tallied (0 flip, 1 truncate, 2 splice).
  int mutate(std::vector<std::uint8_t>& buf, const std::vector<std::uint8_t>* partner,
             std::uint64_t h);

  Executor& exec_;
  FuzzConfig cfg_;
  detail::ChannelDraws draws_;

  /// Per-channel capture ring (most recent kStashDepth eligible frames).
  /// Sharded by sender like ChannelDraws: a channel's sends always run on
  /// the from-node's worker.
  static constexpr std::size_t kStashDepth = 4;
  static constexpr std::size_t kShards = 64;
  struct Stash {
    std::vector<std::uint8_t> frames[kStashDepth];
    std::uint32_t next = 0;   ///< ring cursor
    std::uint32_t count = 0;  ///< filled entries (<= kStashDepth)
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Stash> stash;
  };
  Shard shards_[kShards];

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace paris::runtime
