#include "runtime/fuzz_transport.h"

#include "wire/messages.h"

namespace paris::runtime {

namespace {
/// Frames the fuzzer may corrupt (= drop) or replay. With the reliable layer
/// on this is every message (frames + acks: retransmission covers loss,
/// sequence dedup covers replay). Without it only the idempotent replication
/// layer is touched — corrupting anything else would wedge transactions
/// instead of testing robustness (same contract as ChaosDropClass).
bool fuzz_eligible(const wire::Message& m) {
  const wire::MsgType t = m.type();
  return t == wire::MsgType::kReliableFrame || t == wire::MsgType::kReliableAck ||
         idempotent_message_class(m);
}

std::uint64_t channel_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

FuzzTransport::FuzzTransport(Transport& inner, Executor& exec, FuzzConfig cfg)
    : TransportDecorator(inner),
      exec_(exec),
      cfg_(cfg),
      draws_(splitmix64(cfg.seed ^ 0x66757a7a54505854ull)) {}  // salt: "fuzzTPXT"

int FuzzTransport::mutate(std::vector<std::uint8_t>& buf,
                          const std::vector<std::uint8_t>* partner, std::uint64_t h) {
  const auto pick = [&h](std::uint64_t bound) {
    h = splitmix64(h);
    return bound == 0 ? 0 : h % bound;
  };
  int kind = static_cast<int>(pick(3));
  if (kind == 2 && (partner == nullptr || partner->empty())) kind = static_cast<int>(pick(2));
  switch (kind) {
    case 0: {  // single bit flip
      const std::size_t i = pick(buf.size());
      buf[i] ^= static_cast<std::uint8_t>(1u << pick(8));
      break;
    }
    case 1: {  // truncation (possibly to nothing)
      buf.resize(pick(buf.size()));
      break;
    }
    default: {  // splice: our prefix + an earlier frame's suffix
      const std::size_t i = pick(buf.size() + 1);
      const std::size_t j = pick(partner->size() + 1);
      buf.resize(i);
      buf.insert(buf.end(), partner->begin() + static_cast<std::ptrdiff_t>(j),
                 partner->end());
      break;
    }
  }
  return kind;
}

void FuzzTransport::send_at(NodeId from, NodeId to, wire::MessagePtr msg,
                            std::uint64_t at_us) {
  const bool eligible = fuzz_eligible(*msg);
  if (!eligible) {
    inner_.send_at(from, to, std::move(msg), at_us);
    return;
  }
  const std::uint64_t key = channel_key(from, to);
  Shard& sh = shards_[from % kShards];

  // Replay: re-deliver an earlier captured frame on this channel, out of
  // phase with the live stream. The receiver's dedup must absorb it.
  if (cfg_.replay_p > 0 && draws_.next(from, to) < cfg_.replay_p) {
    std::vector<std::uint8_t> old;
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      auto it = sh.stash.find(key);
      if (it != sh.stash.end() && it->second.count > 0) {
        const auto pickd = draws_.next(from, to);
        const auto idx = static_cast<std::uint32_t>(
            pickd * static_cast<double>(it->second.count));
        old = it->second.frames[idx % it->second.count];  // copy: map may rehash
      }
    }
    if (!old.empty()) {
      wire::Decoder d(old.data(), old.size());
      wire::MessagePtr dup = wire::decode_message_pooled(d, inner_.msg_pool(from));
      inner_.send_at(from, to, std::move(dup), at_us);
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.replays;
    }
  }

  // Capture + corruption both need the encoded bytes; encode once.
  std::vector<std::uint8_t> scratch;
  wire::encode_message(*msg, scratch);
  if (scratch.size() <= cfg_.max_capture_bytes) {
    std::lock_guard<std::mutex> lk(sh.mu);
    Stash& st = sh.stash[key];
    st.frames[st.next] = scratch;
    st.next = (st.next + 1) % kStashDepth;
    if (st.count < kStashDepth) ++st.count;
    std::lock_guard<std::mutex> slk(stats_mu_);
    ++stats_.captured;
  }

  if (cfg_.corrupt_p > 0 && draws_.next(from, to) < cfg_.corrupt_p) {
    // A corrupted frame is mutated bytes on the wire: the parsing stack must
    // survive them (validate rejects, or validate accepts and decode copes),
    // and the frame itself is LOST — checksummed transports never deliver
    // corrupted payloads, so the original is dropped and the layer above
    // must recover.
    std::vector<std::uint8_t> partner;
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      auto it = sh.stash.find(key);
      if (it != sh.stash.end() && it->second.count > 1) {
        // frames[next] is the OLDEST entry once the ring wrapped — the most
        // interesting splice partner (greatest state skew vs the live frame).
        const Stash& st = it->second;
        partner = st.frames[st.count == kStashDepth ? st.next : 0];
      }
    }
    const std::uint64_t h = splitmix64(
        static_cast<std::uint64_t>(draws_.next(from, to) * 0x1.0p53));
    const int kind = mutate(scratch, partner.empty() ? nullptr : &partner, h);
    const bool ok = wire::validate_encoded_message(scratch.data(), scratch.size());
    if (ok) {
      // Validation accepted the mutant: the decoder must also cope. The
      // result is discarded, never delivered — a checksummed wire cannot
      // surface bytes nobody sent.
      wire::Decoder d(scratch.data(), scratch.size());
      wire::MessagePtr m = wire::decode_message_pooled(d, inner_.msg_pool(from));
      (void)m;
    }
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.mutated;
      if (kind == 0) ++stats_.flips;
      else if (kind == 1) ++stats_.truncations;
      else ++stats_.splices;
      if (ok) ++stats_.accepted_validate;
      else ++stats_.rejected_validate;
    }
    return;  // msg released, never delivered: corruption is loss
  }

  inner_.send_at(from, to, std::move(msg), at_us);
}

FuzzTransport::Stats FuzzTransport::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace paris::runtime
