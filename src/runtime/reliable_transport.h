#pragma once
// ReliableTransport: at-least-once delivery with exactly-once handoff for
// the thread runtime (DESIGN.md §9).
//
// The backend's channels are FIFO but — once ChaosTransport or
// PartitionTransport sit below — no longer lossless, which the paper's TCP
// assumption requires. This decorator restores the assumption on top of a
// lossy stack, the way TCP restores it on top of IP:
//
//   protocol -> [ReliableTransport] -> [Chaos] -> [Partition] -> [Latency] -> backend
//
//  * Every protocol message is wrapped in a wire::ReliableFrame carrying a
//    per-channel 1-based sequence number; the payload is the inner message's
//    encode_message() bytes (frames come from the sender worker's pool, so
//    the wrapping is allocation-free in steady state).
//  * The sender keeps unacknowledged frames in a per-channel window
//    (contiguous seqs, deque of recycled MessagePtrs), transmitting at
//    most `max_in_flight` of them at a time — the rest queue and are
//    ack-clocked out as the window head drains, so a blackout-era backlog
//    costs one bounded burst per retransmission probe instead of a
//    quadratic full-backlog resend. A periodic per-node timer retransmits
//    the in-flight burst once its oldest frame has been silent for the
//    RTO, with exponential backoff (capped) while a channel makes no
//    progress, so a long partition is probed, not flooded.
//  * The receiving side interposes an Endpoint actor between the backend
//    and the real server/client. It delivers frames strictly in sequence
//    order (duplicates are discarded; frames past a loss-induced gap are
//    BUFFERED, bounded, and drained the moment the gap fills), acks
//    cumulatively on every frame, and hands each decoded inner message to
//    the real actor exactly once — redelivery below, exactly-once above.
//    Buffering makes single-loss recovery cost one head retransmission
//    instead of a full go-back-N round on a fat WAN pipe.
//  * Latest-wins periodic messages (Heartbeat, GossipUp, GossipRoot,
//    UstDown) are COALESCED: when a newer one is framed while an older one
//    is still unacked, the older window entry is replaced by an empty
//    placeholder frame (same seq, no payload). Retransmission then carries
//    one live copy of such a message per channel instead of a partition-
//    long backlog; the receiver treats an empty payload as "advance the
//    sequence, deliver nothing".
//
// Acks (wire::ReliableAck) are sent through the inner transport UNframed:
// they are idempotent and self-healing — a lost ack is re-elicited by the
// retransmission it fails to suppress, a duplicate or stale ack is ignored.
//
// Determinism: the reliable layer adds no randomness of its own. Its
// retransmissions are driven by real time, so (like the thread runtime
// itself) their schedule is not reproducible — but any chaos drops below
// stay seed-deterministic per channel, and the layer's guarantee (exactly-
// once, in order, per channel) is schedule-independent, which is what the
// exactness/causal checkers verify.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/actor.h"
#include "runtime/executor.h"
#include "runtime/latency_transport.h"
#include "runtime/transport.h"

namespace paris::runtime {

struct ReliableConfig {
  /// Retransmit the window once its oldest frame has been unacked this long.
  std::uint64_t rto_us = 100'000;
  /// Backoff cap: consecutive silent retransmission rounds double the
  /// effective RTO up to this bound (recovery latency after a heal is at
  /// most this plus one scan period).
  std::uint64_t max_rto_us = 2'000'000;
  /// Window-scan timer period; 0 derives rto_us / 2.
  std::uint64_t scan_period_us = 0;
  /// Fast-retransmit guard: a stale ack (the receiver is stuck behind a
  /// gap) triggers an immediate retransmission of the window HEAD — the
  /// receiver buffers everything after the gap, so the head is all it
  /// needs — but at most once per this interval, since retransmitted
  /// duplicates re-elicit stale acks and the guard keeps that feedback from
  /// becoming a storm. 0 derives rto_us / 4.
  std::uint64_t fast_retx_guard_us = 0;
  /// Sender-side in-flight cap per channel: at most this many unacked
  /// frames are ever on the wire; the rest queue in the window and are
  /// ack-clocked out as the head drains. Bounds both a blackout probe's
  /// cost (one burst per backed-off RTO) and the post-heal replay rate.
  /// Must stay below max_ooo_buffered or the receiver sheds the burst tail.
  std::uint64_t max_in_flight = 512;
  /// Receiver-side reorder buffer cap per channel (frames held past a
  /// gap). Overflow sheds the newest frame — retransmission re-covers it —
  /// so a dead channel cannot hoard memory.
  std::size_t max_ooo_buffered = 1024;
  /// Selective repeat: receivers append SACK ranges (buffered-past-the-gap
  /// seqs) to every ack and senders retransmit only the gaps. Off =
  /// go-back-N over the in-flight burst (the PR 4 behavior), kept as a
  /// baseline the bench compares against.
  bool sack = true;
  /// At most this many [lo,hi] ranges per ack (TCP options carry 3-4; we
  /// can afford more, but the tail past the cap is re-covered by
  /// retransmission anyway).
  std::size_t max_sack_ranges = 8;
  /// Adaptive RTO (Jacobson/Karels, per channel): retransmission timeouts
  /// derive from measured RTTs (srtt + 4*rttvar, clamped to
  /// [min_rto_us, max_rto_us]) instead of the fixed rto_us, which then only
  /// seeds unprimed channels. Removes the per-scenario RTO tuning the
  /// WAN/chaos benches needed (CLI: --reliable-rto-ms=auto).
  bool adaptive_rto = false;
  /// Floor for the adaptive RTO: loopback RTTs are microseconds, and an
  /// RTO that small turns scheduling hiccups into retransmission storms.
  std::uint64_t min_rto_us = 5'000;
  /// This process's incarnation (SocketBackend epoch; 0 on threads/sim).
  /// Receivers drop frames whose dst_epoch differs — retransmissions
  /// numbered for a dead incarnation's channel must never mingle with the
  /// renumbered stream (see ReliableFrame::dst_epoch).
  std::uint32_t self_epoch = 0;

  std::uint64_t effective_scan_period_us() const {
    return scan_period_us != 0 ? scan_period_us : rto_us / 2;
  }
  std::uint64_t effective_fast_retx_guard_us() const {
    return fast_retx_guard_us != 0 ? fast_retx_guard_us : rto_us / 4;
  }
};

/// Jacobson/Karels RTT estimator (integer µs): srtt is an EWMA (gain 1/8),
/// rttvar a mean-deviation EWMA (gain 1/4), rto = srtt + 4*rttvar. Samples
/// must follow Karn's rule — never taken from a retransmitted frame, whose
/// ack is ambiguous. Standalone so its convergence properties are unit-
/// testable without a transport.
class RttEstimator {
 public:
  void on_sample(std::uint64_t rtt_us) {
    if (srtt_us_ == 0) {
      srtt_us_ = rtt_us;
      rttvar_us_ = rtt_us / 2;
    } else {
      const std::uint64_t dev = srtt_us_ > rtt_us ? srtt_us_ - rtt_us : rtt_us - srtt_us_;
      rttvar_us_ = (3 * rttvar_us_ + dev) / 4;
      srtt_us_ = (7 * srtt_us_ + rtt_us) / 8;
    }
    ++samples_;
  }

  bool primed() const { return samples_ != 0; }
  std::uint64_t srtt_us() const { return srtt_us_; }
  std::uint64_t rttvar_us() const { return rttvar_us_; }
  std::uint64_t samples() const { return samples_; }

  /// srtt + 4*rttvar clamped to [min_us, max_us]; min_us when unprimed.
  std::uint64_t rto_us(std::uint64_t min_us, std::uint64_t max_us) const {
    const std::uint64_t raw = srtt_us_ + 4 * rttvar_us_;
    return raw < min_us ? min_us : (raw > max_us ? max_us : raw);
  }

 private:
  std::uint64_t srtt_us_ = 0;
  std::uint64_t rttvar_us_ = 0;
  std::uint64_t samples_ = 0;
};

class ReliableTransport final : public TransportDecorator {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;       ///< first transmissions
    std::uint64_t retransmits = 0;       ///< frames re-sent (RTO timer or fast)
    std::uint64_t fast_retransmits = 0;  ///< window resends triggered by stale acks
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_frames = 0;        ///< already-delivered seqs discarded
    std::uint64_t ooo_frames = 0;        ///< post-gap frames buffered (or shed)
    std::uint64_t stale_acks = 0;        ///< acks that advanced nothing
    std::uint64_t coalesced = 0;         ///< latest-wins frames tombstoned
    std::uint64_t sacked_skips = 0;      ///< retransmissions avoided via SACK
    std::uint64_t malformed_acks = 0;    ///< acks with rejected SACK ranges
    std::uint64_t rtt_samples = 0;       ///< Karn-valid samples fed to estimators
    std::uint64_t channel_resets = 0;    ///< channels renumbered after a peer respawn
    std::uint64_t fenced_frames = 0;     ///< frames stamped for another incarnation
  };

  ReliableTransport(Transport& inner, Executor& exec, ReliableConfig cfg);
  ~ReliableTransport() override;

  /// Returns the interposer to register with the backend IN PLACE OF
  /// `real`; after the backend assigns a node id, call attach(actor, node).
  /// Both calls must happen before the backend starts.
  Actor* wrap(Actor* real);
  void attach(Actor* wrapped, NodeId node);

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override;
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override;

  const ReliableConfig& config() const { return cfg_; }
  Stats stats() const;

  /// In-flight frames currently awaiting ack across all channels of `node`
  /// (test/diagnostic access; call only when the backend is quiescent).
  std::size_t window_size(NodeId node) const;

  /// Epoch-fenced membership (DESIGN §11): the process owning `peers` was
  /// respawned with incarnation `peer_epoch`, so its reliable state
  /// (delivered seqs, dedup windows) is gone. Every send channel from
  /// `self` toward a peer is renumbered from seq 1 and restamped with the
  /// new epoch — unacked frames are re-framed in place and retransmitted,
  /// so nothing the old incarnation failed to ack is lost, while copies of
  /// the OLD framing still in flight are fenced at the receiver by their
  /// stale dst_epoch — and every receive channel from a peer restarts its
  /// dedup state at 0. MUST run on `self`'s worker (post it via the
  /// executor), like all endpoint state.
  void reset_peer_channels(NodeId self, const std::vector<NodeId>& peers,
                           std::uint32_t peer_epoch);

 private:
  class Endpoint;

  Executor& exec_;
  ReliableConfig cfg_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  ///< fixed before start
  std::vector<Endpoint*> by_node_;                    ///< index = NodeId

  // Counters are touched from every worker; relaxed atomics, snapshotted by
  // stats().
  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0}, retransmits{0}, fast_retransmits{0},
        acks_sent{0}, dup_frames{0}, ooo_frames{0}, stale_acks{0}, coalesced{0},
        sacked_skips{0}, malformed_acks{0}, rtt_samples{0}, channel_resets{0},
        fenced_frames{0};
  };
  AtomicStats stats_;
};

}  // namespace paris::runtime
