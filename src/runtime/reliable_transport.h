#pragma once
// ReliableTransport: at-least-once delivery with exactly-once handoff for
// the thread runtime (DESIGN.md §9).
//
// The backend's channels are FIFO but — once ChaosTransport or
// PartitionTransport sit below — no longer lossless, which the paper's TCP
// assumption requires. This decorator restores the assumption on top of a
// lossy stack, the way TCP restores it on top of IP:
//
//   protocol -> [ReliableTransport] -> [Chaos] -> [Partition] -> [Latency] -> backend
//
//  * Every protocol message is wrapped in a wire::ReliableFrame carrying a
//    per-channel 1-based sequence number; the payload is the inner message's
//    encode_message() bytes (frames come from the sender worker's pool, so
//    the wrapping is allocation-free in steady state).
//  * The sender keeps unacknowledged frames in a per-channel window
//    (contiguous seqs, deque of recycled MessagePtrs), transmitting at
//    most `max_in_flight` of them at a time — the rest queue and are
//    ack-clocked out as the window head drains, so a blackout-era backlog
//    costs one bounded burst per retransmission probe instead of a
//    quadratic full-backlog resend. A periodic per-node timer retransmits
//    the in-flight burst once its oldest frame has been silent for the
//    RTO, with exponential backoff (capped) while a channel makes no
//    progress, so a long partition is probed, not flooded.
//  * The receiving side interposes an Endpoint actor between the backend
//    and the real server/client. It delivers frames strictly in sequence
//    order (duplicates are discarded; frames past a loss-induced gap are
//    BUFFERED, bounded, and drained the moment the gap fills), acks
//    cumulatively on every frame, and hands each decoded inner message to
//    the real actor exactly once — redelivery below, exactly-once above.
//    Buffering makes single-loss recovery cost one head retransmission
//    instead of a full go-back-N round on a fat WAN pipe.
//  * Latest-wins periodic messages (Heartbeat, GossipUp, GossipRoot,
//    UstDown) are COALESCED: when a newer one is framed while an older one
//    is still unacked, the older window entry is replaced by an empty
//    placeholder frame (same seq, no payload). Retransmission then carries
//    one live copy of such a message per channel instead of a partition-
//    long backlog; the receiver treats an empty payload as "advance the
//    sequence, deliver nothing".
//
// Acks (wire::ReliableAck) are sent through the inner transport UNframed:
// they are idempotent and self-healing — a lost ack is re-elicited by the
// retransmission it fails to suppress, a duplicate or stale ack is ignored.
//
// Determinism: the reliable layer adds no randomness of its own. Its
// retransmissions are driven by real time, so (like the thread runtime
// itself) their schedule is not reproducible — but any chaos drops below
// stay seed-deterministic per channel, and the layer's guarantee (exactly-
// once, in order, per channel) is schedule-independent, which is what the
// exactness/causal checkers verify.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/actor.h"
#include "runtime/executor.h"
#include "runtime/latency_transport.h"
#include "runtime/transport.h"

namespace paris::runtime {

struct ReliableConfig {
  /// Retransmit the window once its oldest frame has been unacked this long.
  std::uint64_t rto_us = 100'000;
  /// Backoff cap: consecutive silent retransmission rounds double the
  /// effective RTO up to this bound (recovery latency after a heal is at
  /// most this plus one scan period).
  std::uint64_t max_rto_us = 2'000'000;
  /// Window-scan timer period; 0 derives rto_us / 2.
  std::uint64_t scan_period_us = 0;
  /// Fast-retransmit guard: a stale ack (the receiver is stuck behind a
  /// gap) triggers an immediate retransmission of the window HEAD — the
  /// receiver buffers everything after the gap, so the head is all it
  /// needs — but at most once per this interval, since retransmitted
  /// duplicates re-elicit stale acks and the guard keeps that feedback from
  /// becoming a storm. 0 derives rto_us / 4.
  std::uint64_t fast_retx_guard_us = 0;
  /// Sender-side in-flight cap per channel: at most this many unacked
  /// frames are ever on the wire; the rest queue in the window and are
  /// ack-clocked out as the head drains. Bounds both a blackout probe's
  /// cost (one burst per backed-off RTO) and the post-heal replay rate.
  /// Must stay below max_ooo_buffered or the receiver sheds the burst tail.
  std::uint64_t max_in_flight = 512;
  /// Receiver-side reorder buffer cap per channel (frames held past a
  /// gap). Overflow sheds the newest frame — retransmission re-covers it —
  /// so a dead channel cannot hoard memory.
  std::size_t max_ooo_buffered = 1024;

  std::uint64_t effective_scan_period_us() const {
    return scan_period_us != 0 ? scan_period_us : rto_us / 2;
  }
  std::uint64_t effective_fast_retx_guard_us() const {
    return fast_retx_guard_us != 0 ? fast_retx_guard_us : rto_us / 4;
  }
};

class ReliableTransport final : public TransportDecorator {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;       ///< first transmissions
    std::uint64_t retransmits = 0;       ///< frames re-sent (RTO timer or fast)
    std::uint64_t fast_retransmits = 0;  ///< window resends triggered by stale acks
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_frames = 0;        ///< already-delivered seqs discarded
    std::uint64_t ooo_frames = 0;        ///< post-gap frames buffered (or shed)
    std::uint64_t stale_acks = 0;        ///< acks that advanced nothing
    std::uint64_t coalesced = 0;         ///< latest-wins frames tombstoned
  };

  ReliableTransport(Transport& inner, Executor& exec, ReliableConfig cfg);
  ~ReliableTransport() override;

  /// Returns the interposer to register with the backend IN PLACE OF
  /// `real`; after the backend assigns a node id, call attach(actor, node).
  /// Both calls must happen before the backend starts.
  Actor* wrap(Actor* real);
  void attach(Actor* wrapped, NodeId node);

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override;
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override;

  const ReliableConfig& config() const { return cfg_; }
  Stats stats() const;

  /// In-flight frames currently awaiting ack across all channels of `node`
  /// (test/diagnostic access; call only when the backend is quiescent).
  std::size_t window_size(NodeId node) const;

 private:
  class Endpoint;

  Executor& exec_;
  ReliableConfig cfg_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  ///< fixed before start
  std::vector<Endpoint*> by_node_;                    ///< index = NodeId

  // Counters are touched from every worker; relaxed atomics, snapshotted by
  // stats().
  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0}, retransmits{0}, fast_retransmits{0},
        acks_sent{0}, dup_frames{0}, ooo_frames{0}, stale_acks{0}, coalesced{0};
  };
  AtomicStats stats_;
};

}  // namespace paris::runtime
