#include "runtime/partition_transport.h"

#include <cstdlib>

namespace paris::runtime {

namespace {

/// Parses a non-negative decimal; advances *p past it. Returns false if no
/// digits were consumed (strtoull alone would wrap "-1" to a huge value
/// instead of rejecting it).
bool parse_u64(const char*& p, std::uint64_t& out) {
  if (*p < '0' || *p > '9') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p) return false;
  out = v;
  p = end;
  return true;
}

bool parse_window(const char*& p, PartitionWindow& w) {
  std::uint64_t a = 0, b = 0, start_ms = 0, end_ms = 0;
  if (!parse_u64(p, a)) return false;
  if (*p == '-') {
    ++p;
    if (!parse_u64(p, b)) return false;
    w.isolate_all = false;
  } else {
    w.isolate_all = true;
  }
  if (*p != ':') return false;
  ++p;
  if (!parse_u64(p, start_ms)) return false;
  if (*p != ':') return false;
  ++p;
  if (!parse_u64(p, end_ms)) return false;
  if (end_ms <= start_ms) return false;
  w.a = static_cast<DcId>(a);
  w.b = static_cast<DcId>(b);
  w.start_us = start_ms * 1000;
  w.end_us = end_ms * 1000;
  return true;
}

}  // namespace

bool parse_partition_spec(const std::string& s, PartitionSpec& out) {
  PartitionSpec spec;
  const char* p = s.c_str();
  while (true) {
    PartitionWindow w;
    if (!parse_window(p, w)) return false;
    spec.windows.push_back(w);
    if (*p == '\0') break;
    if (*p != ',') return false;
    ++p;
  }
  out = std::move(spec);
  return true;
}

}  // namespace paris::runtime
