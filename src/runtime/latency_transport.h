#pragma once
// Composable Transport decorators for the thread runtime.
//
// The discrete-event simulator models WAN latency inside sim::Network, but
// the ThreadBackend delivers every message instantly — so a threads run
// could only reproduce the paper's throughput numbers, never the latency
// and visibility figures (fig3/fig4), and could not express degraded-
// network scenarios at all. These decorators close that gap:
//
//   protocol -> [ChaosTransport] -> [LatencyTransport] -> backend
//
//  * LatencyTransport injects per-DC-pair one-way delay drawn from the
//    deployment's latency matrix (the same sim::LatencyModel the simulator
//    uses) plus a configurable jitter factor.
//  * ChaosTransport adds optional fault injection: TCP-like stalls that
//    reorder traffic ACROSS channels (never within one), and duplication /
//    drops of the idempotent replication-layer messages. Off by default;
//    drops deliberately violate the replication contract, which the offline
//    exactness checker then reports.
//
// Determinism: decorators draw randomness from counter-based hashes of
// (seed, channel, per-channel message index) — a pure function of the seed
// and each channel's send sequence, independent of worker-thread
// interleaving. Two runs with the same seed stall/duplicate/drop the same
// messages per channel even though the threads runtime itself is not
// deterministic.
//
// FIFO safety: decorators route every message through Transport::send_at;
// the backend clamps deliver-at strictly increasing per channel, so no
// decorator can reorder a channel (the paper's TCP assumption, DESIGN.md
// §8).

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/rng.h"
#include "runtime/executor.h"
#include "runtime/transport.h"
#include "sim/latency.h"

namespace paris::runtime {

/// Latency model applied to a threads deployment's transport.
enum class LatencyModelKind {
  kNone,    ///< instant delivery (PR 2 behavior; throughput experiments)
  kMatrix,  ///< per-DC-pair mean one-way delay, no jitter
  kJitter,  ///< matrix plus uniform jitter: mean * U[1-j, 1+j]
};

const char* latency_model_name(LatencyModelKind k);

/// Base decorator: forwards every Transport call to the wrapped transport.
/// Subclasses override just the sends they shape.
class TransportDecorator : public Transport {
 public:
  explicit TransportDecorator(Transport& inner) : inner_(inner) {}

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    inner_.send(from, to, std::move(msg));
  }
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override {
    inner_.send_at(from, to, std::move(msg), at_us);
  }
  wire::MessagePool& msg_pool(NodeId self) override { return inner_.msg_pool(self); }
  DcId dc_of(NodeId n) const override { return inner_.dc_of(n); }
  bool colocated(NodeId a, NodeId b) const override { return inner_.colocated(a, b); }
  bool node_paused(NodeId n) const override { return inner_.node_paused(n); }
  void charge_cpu(NodeId n, std::uint64_t us) override { inner_.charge_cpu(n, us); }
  std::uint64_t total_bytes_sent() const override { return inner_.total_bytes_sent(); }

 protected:
  Transport& inner_;
};

namespace detail {

/// Deterministic per-channel draw sequence: draw i on channel c is
/// u01(hash(seed, c, i)), so decorator randomness is reproducible per seed
/// no matter how worker threads interleave. Counter state is sharded by
/// the SENDING node — a channel's sends always run on the from-node's
/// worker, so two workers only ever contend when their shards collide,
/// never on one global lock (the raw undecorated path touches none of
/// this).
class ChannelDraws {
 public:
  explicit ChannelDraws(std::uint64_t seed) : seed_(seed) {}

  /// Uniform double in [0, 1), advancing the channel's counter.
  double next(NodeId from, NodeId to) {
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    Shard& s = shards_[from % kShards];
    std::uint64_t idx;
    {
      std::lock_guard<std::mutex> lk(s.mu);
      idx = s.counters[key]++;
    }
    const std::uint64_t h = splitmix64(splitmix64(seed_ ^ key) ^ idx);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::uint64_t> counters;
  };
  std::uint64_t seed_;
  Shard shards_[kShards];
};

}  // namespace detail

/// Injects per-DC-pair one-way delay (matrix mean, optional jitter) into
/// every send. Colocated pairs get the model's loopback delay, same-DC
/// pairs its intra-DC delay — mirroring sim::Network's use of the model.
class LatencyTransport final : public TransportDecorator {
 public:
  LatencyTransport(Transport& inner, Executor& exec, sim::LatencyModel model,
                   std::uint64_t seed);

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    send_at(from, to, std::move(msg), exec_.now_us());
  }
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override {
    inner_.send_at(from, to, std::move(msg), at_us + sample_one_way_us(from, to));
  }

  /// The delay the next message from->to will get (public for tests: the
  /// sequence is a pure function of the seed and the channel).
  std::uint64_t sample_one_way_us(NodeId from, NodeId to);

  const sim::LatencyModel& model() const { return model_; }

 private:
  Executor& exec_;
  sim::LatencyModel model_;
  detail::ChannelDraws draws_;
};

/// Which messages drop_p applies to. Reliable frames are classified by the
/// message they CARRY (ReliableFrame::inner_type), so a widened drop class
/// targets the protocol traffic inside the reliability layer, not just its
/// envelope; bare ReliableAcks match only kAll.
enum class ChaosDropClass : std::uint8_t {
  kReplication,  ///< ReplicateBatch + Heartbeat only (pre-PR 4 behavior)
  kRequests,     ///< everything EXCEPT the replication layer
  kAll,          ///< any message, acks included
};

const char* chaos_drop_class_name(ChaosDropClass c);

/// True for the idempotent replication/stabilization layer (ReplicateBatch,
/// Heartbeat), classified THROUGH reliable frames by the message they carry;
/// bare ReliableAcks are not idempotent-class. Shared by every decorator
/// that may duplicate traffic (chaos, WAN, fuzz): duplicating anything else
/// without a reliability layer above would wedge transactions.
bool idempotent_message_class(const wire::Message& m);

/// Fault-injection decorator. All knobs default to off; enabling any makes
/// the transport adversarial on purpose:
///  * reorder_p: probability a message is stalled by reorder_stall_us
///    before the latency model applies (a TCP retransmission stall). Per-
///    channel FIFO survives (the backend clamps), so causal safety must
///    hold — asserted by the exactness checker in tests.
///  * duplicate_p: applied only to the idempotent replication-layer
///    messages (ReplicateBatch, Heartbeat — looked up through reliable
///    frames). Duplicates must be absorbed by the monotonic version-vector
///    merge and the store's (ut, tx, sr) dedup.
///  * drop_p: applied to `drop_class`. Without a ReliableTransport above,
///    dropping the replication layer breaks the version-clock promise and
///    surfaces as exactness-checker violations, and dropping request/
///    response traffic wedges transactions outright; with the reliable
///    layer, any class may be dropped and the run must still converge
///    checker-clean (DESIGN.md §9).
struct ChaosConfig {
  double reorder_p = 0;
  std::uint64_t reorder_stall_us = 10'000;
  double duplicate_p = 0;
  double drop_p = 0;
  ChaosDropClass drop_class = ChaosDropClass::kReplication;
  std::uint64_t seed = 0;  ///< 0: the deployment substitutes its own seed

  bool enabled() const { return reorder_p > 0 || duplicate_p > 0 || drop_p > 0; }
};

class ChaosTransport final : public TransportDecorator {
 public:
  struct Stats {
    std::uint64_t stalled = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t dropped = 0;
  };

  ChaosTransport(Transport& inner, Executor& exec, ChaosConfig cfg);

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    send_at(from, to, std::move(msg), exec_.now_us());
  }
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override;

  Stats stats() const;

 private:
  Executor& exec_;
  ChaosConfig cfg_;
  detail::ChannelDraws draws_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace paris::runtime
