#pragma once
// An actor is anything that can receive protocol messages: servers and
// client sessions. The runtime backend invokes on_message on the actor's
// execution context — after simulated transmission delay and CPU service
// queueing for the sim backend, or on the owning worker thread for the
// thread backend. A single actor never executes concurrently with itself.

#include "common/types.h"

namespace paris::wire {
struct Message;
}  // namespace paris::wire

namespace paris::runtime {

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_message(NodeId from, const wire::Message& m) = 0;
};

}  // namespace paris::runtime
