#include "runtime/sim_runtime.h"

#include "common/assert.h"

namespace paris::runtime {

SimBackend& SimBackend::of(Backend& b) {
  PARIS_CHECK_MSG(b.kind() == Kind::kSim,
                  "sim-specific access on a non-sim runtime backend");
  return static_cast<SimBackend&>(b);
}

}  // namespace paris::runtime
