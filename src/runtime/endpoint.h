#pragma once
// Cross-host addressing for the socket runtime (DESIGN §10). An Endpoint is
// where one rank of the process mesh listens; a host list names every rank's
// endpoint, replacing the historical loopback `base_port + rank` arithmetic
// so the same binary deploys across machines. loopback_host_list() is the
// ONLY place that arithmetic is still allowed — it expands the deprecated
// --listen-base-port convenience into an explicit loopback host list.

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <vector>

namespace paris::runtime {

struct Endpoint {
  std::string host;         ///< IPv4 literal or resolvable hostname
  std::uint16_t port = 0;

  bool operator==(const Endpoint& o) const { return host == o.host && port == o.port; }
  bool operator!=(const Endpoint& o) const { return !(*this == o); }

  /// "host:port"
  std::string str() const;
};

/// Parses "host:port". Accepts IPv4 literals and hostnames; the port must be
/// in [1, 65535]. Returns false with *err set on junk.
bool parse_endpoint(const std::string& text, Endpoint* out, std::string* err);

/// Parses a comma-separated host list "h1:p1,h2:p2,...". Rejects empty
/// entries and duplicate endpoints (two ranks cannot share a listen
/// address). Returns false with *err set on the first bad entry.
bool parse_host_list(const std::string& text, std::vector<Endpoint>* out, std::string* err);

/// Rank r's endpoint must exist and be unique; nprocs > 0 must equal the
/// list length. Centralizes the count-mismatch check every launcher flag
/// path needs.
bool validate_host_list(const std::vector<Endpoint>& hosts, std::uint32_t nprocs,
                        std::string* err);

/// "h1:p1,h2:p2,..." — the inverse of parse_host_list.
std::string format_host_list(const std::vector<Endpoint>& hosts);

/// Back-compat expansion of --listen-base-port: rank r listens on
/// 127.0.0.1:(base_port + r). The only sanctioned base_port + rank site.
std::vector<Endpoint> loopback_host_list(std::uint32_t nprocs, std::uint16_t base_port);

/// Resolves to an IPv4 socket address: inet_pton for dotted quads, else a
/// getaddrinfo lookup (AF_INET). Returns false with *err set when the host
/// does not resolve.
bool resolve_ipv4(const Endpoint& ep, sockaddr_in* out, std::string* err);

}  // namespace paris::runtime
