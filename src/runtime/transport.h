#pragma once
// Transport: message delivery + message-pool access, abstracted over the
// simulated network (sim::Network) and the thread backend's mailboxes.
//
// The CPU-model hooks (charge_cpu, node_paused) exist so the simulator can
// model service time and fault injection; the thread backend runs on real
// CPUs, so they are no-ops there.

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "wire/messages.h"

namespace paris::runtime {

/// CPU cost (µs) of processing a message at a node; nullable. Only the sim
/// backend consumes it — real threads pay real cycles.
using ServiceFn = std::function<std::uint64_t(const wire::Message&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual void send(NodeId from, NodeId to, wire::MessagePtr msg) = 0;

  /// Timed delivery (decorator support): deliver msg at absolute executor
  /// time `at_us`. The thread backend parks the encoded envelope at the
  /// receiver and clamps per-channel so timed sends can never violate a
  /// channel's FIFO order (TCP model) — but mixing send() and send_at() on
  /// one channel CAN reorder, so a delaying decorator must route every
  /// message through send_at. Backends without timed delivery (the sim
  /// network models latency itself) deliver immediately.
  virtual void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) {
    (void)at_us;
    send(from, to, std::move(msg));
  }

  /// True when a<->b were registered as colocated (a client and its
  /// coordinator): latency decorators give such pairs loopback delay, like
  /// the simulated network does.
  virtual bool colocated(NodeId a, NodeId b) const {
    (void)a;
    (void)b;
    return false;
  }

  /// Pool the actor `self` builds outgoing messages from. The sim backend
  /// has one pool (single-threaded); the thread backend returns the pool of
  /// self's worker, which only that worker's thread may touch.
  virtual wire::MessagePool& msg_pool(NodeId self) = 0;

  virtual DcId dc_of(NodeId n) const = 0;

  /// Fault injection (sim only): a paused node's timers skip work. The
  /// thread backend never pauses nodes.
  virtual bool node_paused(NodeId n) const = 0;

  /// Accounts CPU consumed by background work (sim cost model; no-op for
  /// threads).
  virtual void charge_cpu(NodeId n, std::uint64_t us) = 0;

  virtual std::uint64_t total_bytes_sent() const = 0;
};

}  // namespace paris::runtime
