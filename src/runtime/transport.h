#pragma once
// Transport: message delivery + message-pool access, abstracted over the
// simulated network (sim::Network) and the thread backend's mailboxes.
//
// The CPU-model hooks (charge_cpu, node_paused) exist so the simulator can
// model service time and fault injection; the thread backend runs on real
// CPUs, so they are no-ops there.

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "wire/messages.h"

namespace paris::runtime {

/// CPU cost (µs) of processing a message at a node; nullable. Only the sim
/// backend consumes it — real threads pay real cycles.
using ServiceFn = std::function<std::uint64_t(const wire::Message&)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual void send(NodeId from, NodeId to, wire::MessagePtr msg) = 0;

  /// Pool the actor `self` builds outgoing messages from. The sim backend
  /// has one pool (single-threaded); the thread backend returns the pool of
  /// self's worker, which only that worker's thread may touch.
  virtual wire::MessagePool& msg_pool(NodeId self) = 0;

  virtual DcId dc_of(NodeId n) const = 0;

  /// Fault injection (sim only): a paused node's timers skip work. The
  /// thread backend never pauses nodes.
  virtual bool node_paused(NodeId n) const = 0;

  /// Accounts CPU consumed by background work (sim cost model; no-op for
  /// threads).
  virtual void charge_cpu(NodeId n, std::uint64_t us) = 0;

  virtual std::uint64_t total_bytes_sent() const = 0;
};

}  // namespace paris::runtime
