#pragma once
// ThreadBackend: the protocol stack on real parallel hardware.
//
//  * W worker threads; every actor is pinned to one worker (servers round-
//    robin in registration order, clients to their colocated coordinator's
//    worker), so an actor never executes concurrently with itself and actor
//    state needs no locks.
//  * One MPSC mailbox per worker (mutex + condvar, batched drain). A send
//    ENCODES the message on the sending thread and the receiving worker
//    DECODES it into its own wire::MessagePool — messages and pools never
//    cross threads, which preserves PR 1's single-threaded pool design and
//    the zero-steady-state-allocation property: envelopes and their byte
//    buffers are recycled through a per-worker free list, and decode fills
//    pooled messages whose vectors keep their grown capacity.
//  * Timers are per-worker min-heaps driven by steady_clock; a periodic
//    entry reschedules itself on fire. Cancellation flips an atomic flag
//    (lazy deletion), so TimerHandle destruction is safe from any thread,
//    including after stop().
//  * Timed delivery (send_at, used by the latency/chaos transport
//    decorators): an envelope carries a deliver-at deadline; the receiving
//    worker parks future envelopes in a per-worker min-heap and releases
//    them when due, recycling them through the same free list as immediate
//    ones. The sender clamps each channel's deadline to be strictly
//    increasing (TCP model), so timed delivery can never reorder a channel
//    no matter what deadlines a decorator asks for.
//
// Unlike the sim backend, runs are NOT deterministic — correctness is
// validated by the exactness checker, which is order-independent.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/backend.h"
#include "wire/messages.h"

namespace paris::runtime {

/// Extension point the socket backend plugs into a ThreadBackend: nodes the
/// router reports non-local never execute here — their timers are dropped
/// and messages addressed to them are handed to forward() as encoded bytes
/// ([type][payload], the exact encode_message format) instead of being
/// enqueued into a local mailbox. forward() is called from worker threads
/// (and from the main thread before start) and must be thread-safe; the
/// byte buffer is only valid for the duration of the call.
///
/// forward() returns false to REFUSE the frame — the destination's outbound
/// ring is at its byte budget (flow control, DESIGN §12). The caller then
/// parks the envelope on the sending worker and retries shortly, preserving
/// per-destination FIFO; a refusal is backpressure, not loss. Returning
/// true means the frame was consumed (possibly by dropping it on a dead
/// link, which the reliable layer re-covers).
class RemoteRouter {
 public:
  virtual ~RemoteRouter() = default;
  virtual bool is_local(NodeId n) const = 0;
  virtual bool forward(NodeId from, NodeId to, const std::vector<std::uint8_t>& bytes) = 0;
};

class ThreadBackend final : public Backend, public Executor, public Transport {
 public:
  struct Options {
    /// Worker threads. The node count is unknown at construction, so 0
    /// falls back to a single worker here; proto::Deployment resolves its
    /// worker_threads=0 default to one-per-server *before* building the
    /// backend.
    std::uint32_t workers = 0;
    std::uint64_t seed = 1;
  };

  explicit ThreadBackend(Options opt);
  ~ThreadBackend() override;

  // --- Backend ---
  Kind kind() const override { return Kind::kThreads; }
  Executor& exec() override { return *this; }
  Transport& transport() override { return *this; }
  Rng& rng() override { return rng_; }
  NodeId add_node(Actor* actor, DcId dc, ServiceFn service,
                  NodeId colocate_with = kInvalidNode) override;
  void run_for(std::uint64_t us) override;
  void stop() override;
  std::uint64_t events_executed() const override;

  /// Spawns the worker threads (idempotent; run_for calls it). All nodes
  /// and setup-time timers must be registered before this. Aborts if the
  /// backend was already stopped — runs are one-shot.
  void start();
  bool started() const { return started_; }
  std::uint32_t num_workers() const { return static_cast<std::uint32_t>(workers_.size()); }
  std::uint32_t worker_of(NodeId n) const { return nodes_[n].worker; }

  /// Installs the remote router (socket backend). Must happen before the
  /// first add_node; null (the default) means every node is local.
  void set_router(RemoteRouter* r) {
    PARIS_CHECK_MSG(nodes_.empty(), "set_router after nodes were registered");
    router_ = r;
  }
  bool local(NodeId n) const override {
    return router_ == nullptr || router_->is_local(n);
  }

  /// Injects an already-encoded message ([type][payload]) into local node
  /// `to`'s mailbox — the socket backend's inbound path. Thread-safe (the
  /// mailbox is MPSC); `from` may be any registered node, including remote
  /// ones.
  void inject_encoded(NodeId from, NodeId to, const std::uint8_t* data, std::size_t n);

  // --- Executor ---
  std::uint64_t now_us() const override;
  void defer(NodeId actor, std::function<void()> fn) override;
  void post(NodeId actor, std::function<void()> fn) override { defer(actor, std::move(fn)); }
  std::uint64_t start_periodic(NodeId actor, std::uint64_t period_us, std::uint64_t phase_us,
                               std::function<void()> fn) override;
  void cancel_periodic(std::uint64_t id) override;

  // --- Transport ---
  void send(NodeId from, NodeId to, wire::MessagePtr msg) override;
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override;
  wire::MessagePool& msg_pool(NodeId self) override;
  DcId dc_of(NodeId n) const override { return nodes_[n].dc; }
  bool colocated(NodeId a, NodeId b) const override {
    return nodes_[a].anchor == b || nodes_[b].anchor == a;
  }
  bool node_paused(NodeId /*n*/) const override { return false; }
  void charge_cpu(NodeId /*n*/, std::uint64_t /*us*/) override {}
  std::uint64_t total_bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Envelopes parked because the router refused them (peer ring full) —
  /// the socket backend reports this as backpressure_stalls.
  std::uint64_t router_parks() const {
    return router_parks_.load(std::memory_order_relaxed);
  }
  /// Parked envelopes shed at the per-worker cap (reliable re-covers them).
  std::uint64_t router_park_drops() const {
    return router_park_drops_.load(std::memory_order_relaxed);
  }

 private:
  /// One mailbox entry: either an encoded message or a deferred task.
  struct Envelope {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::uint64_t deliver_at_us = 0;  ///< 0 = immediate; else park until due
    bool remote = false;              ///< forward to the router when due
    std::vector<std::uint8_t> bytes;  ///< encoded [type][payload]; empty for tasks
    std::function<void()> task;
  };
  /// Min-heap order for parked timed envelopes.
  struct LaterDelivery {
    bool operator()(const Envelope& a, const Envelope& b) const {
      return a.deliver_at_us > b.deliver_at_us;
    }
  };

  struct TimerRec {
    std::atomic<bool> cancelled{false};
    std::uint64_t period_us = 0;
    std::function<void()> fn;
  };
  struct TimerEntry {
    std::uint64_t deadline_us;
    std::shared_ptr<TimerRec> rec;
    friend bool operator>(const TimerEntry& a, const TimerEntry& b) {
      return a.deadline_us > b.deadline_us;
    }
  };

  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Envelope> inbox;    ///< guarded by mu (producers push)
    std::vector<Envelope> free;     ///< guarded by mu (recycled envelopes)
    std::vector<Envelope> batch;    ///< consumer-local drain buffer
    std::vector<Envelope> held;     ///< consumer-local heap of timed envelopes
    std::vector<Envelope> done;     ///< consumer-local recycle staging
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>>
        timers;  ///< owning thread only (main thread before start)
    /// Per-channel FIFO clamp for timed sends ORIGINATING at this worker's
    /// nodes: last deliver-at handed out per (from, to). Owning thread only
    /// — a node's sends always run on its own worker (or on the main thread
    /// before start), so no lock is needed.
    std::unordered_map<std::uint64_t, std::uint64_t> last_arrival;
    wire::MessagePool pool;  ///< owning thread only
    std::atomic<std::uint64_t> events{0};
    /// Router backpressure (owning thread only; main thread before start):
    /// envelopes forward() refused, waiting for the peer's outbound ring to
    /// drain. FIFO per destination — while a destination has parked
    /// envelopes, new sends to it park behind them rather than bypass.
    std::deque<Envelope> parked;
    std::unordered_map<NodeId, std::uint32_t> parked_dst;  ///< dst → count
    std::size_t parked_bytes = 0;
  };

  struct Node {
    Actor* actor = nullptr;
    DcId dc = 0;
    std::uint32_t worker = 0;
    NodeId anchor = kInvalidNode;  ///< node this one was colocated with
  };

  static std::uint64_t channel_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  void worker_main(Worker& w);
  void enqueue(Worker& w, Envelope env);
  Envelope take_envelope(Worker& w);
  void enqueue_message(NodeId from, NodeId to, const wire::Message& msg,
                       std::uint64_t deliver_at_us);
  void deliver(Worker& w, Envelope& env);
  void release_due_held(Worker& w, std::uint64_t now);
  /// Parks a refused remote envelope on `w` (bounded; sheds + counts beyond
  /// the cap) and moves `env` into the queue.
  void park_remote(Worker& w, Envelope&& env);
  /// Retries parked envelopes once, preserving per-destination FIFO: a
  /// destination that refuses again keeps its whole run parked; other
  /// destinations proceed independently (no cross-peer head-of-line).
  void flush_parked(Worker& w);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Node> nodes_;
  RemoteRouter* router_ = nullptr;  ///< non-null only under a socket backend
  std::uint32_t next_anchor_ = 0;  ///< round-robin worker for non-colocated nodes
  Rng rng_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool stopped_ = false;  ///< stop() is terminal: no restart
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> router_parks_{0};
  std::atomic<std::uint64_t> router_park_drops_{0};

  std::mutex timer_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TimerRec>> timer_recs_;
  std::atomic<std::uint64_t> next_timer_id_{1};
};

}  // namespace paris::runtime
