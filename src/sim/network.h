#pragma once
// Simulated network + CPU model.
//
// * Point-to-point lossless FIFO channels (the paper's system model assumes
//   TCP): per-channel arrival clamping keeps delivery order equal to send
//   order even under latency jitter.
// * Per-server CPU: each node may register a service-cost function; messages
//   queue and are processed serially (this is what produces the saturation
//   knees in the throughput/latency benchmarks).
// * Fault injection: DC pairs can be partitioned; in-flight and new messages
//   are buffered (TCP stalls, not drops) and flushed in order on heal.
// * Codec modes: kBytes encodes + decodes every message through src/wire
//   (default in tests/examples); kSizeOnly skips the byte round-trip but
//   still accounts sizes (used by the large benchmark sweeps).

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/actor.h"
#include "sim/codec_mode.h"
#include "sim/latency.h"
#include "sim/simulation.h"
#include "wire/messages.h"

namespace paris::sim {

/// CPU cost (µs) of processing a message at a node; nullptr-able.
using ServiceFn = std::function<SimTime(const wire::Message&)>;

struct NetCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  SimTime cpu_busy_us = 0;
};

class Network {
 public:
  Network(Simulation& sim, LatencyModel latency, CodecMode mode = CodecMode::kBytes)
      : sim_(sim), latency_(std::move(latency)), mode_(mode) {}

  /// Registers an actor; returns its node id. `service` may be null (zero
  /// CPU cost, e.g. client sessions).
  NodeId add_node(Actor* actor, DcId dc, ServiceFn service = nullptr);

  /// Marks a<->b as collocated (loopback latency), e.g. a client and the
  /// partition server it uses as transaction coordinator (§V-A).
  void set_colocated(NodeId a, NodeId b);

  void send(NodeId from, NodeId to, wire::MessagePtr msg);

  /// Accounts CPU time consumed by background work (timer ticks); delays
  /// subsequently-processed messages on that node.
  void charge_cpu(NodeId node, SimTime us);

  // --- fault injection (§III-C availability) ---
  /// Simulates a crashed/stalled server process: deliveries to the node are
  /// buffered and its background timers are expected to check node_paused()
  /// and skip work. resume_node models a state-preserving failover (the
  /// paper assumes a backup takes over, e.g. via Paxos-replicated state).
  void pause_node(NodeId n);
  void resume_node(NodeId n);
  bool node_paused(NodeId n) const { return nodes_[n].paused; }

  void partition_dcs(DcId a, DcId b);
  void heal_dcs(DcId a, DcId b);
  /// Partitions dc from every other DC.
  void isolate_dc(DcId dc);
  void heal_all();
  bool dcs_partitioned(DcId a, DcId b) const;

  /// Message pool for the protocol send paths: servers and clients acquire
  /// outgoing messages here so a warmed-up deployment sends without
  /// allocating (see wire::MessagePool).
  wire::MessagePool& msg_pool() { return pool_; }

  // --- introspection ---
  DcId dc_of(NodeId n) const { return nodes_[n].dc; }
  std::size_t num_nodes() const { return nodes_.size(); }
  const NetCounters& counters(NodeId n) const { return nodes_[n].counters; }
  const std::uint64_t* msgs_by_type() const { return msgs_by_type_; }
  std::uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  Simulation& sim() { return sim_; }
  const LatencyModel& latency() const { return latency_; }

 private:
  struct Node {
    Actor* actor = nullptr;
    DcId dc = 0;
    ServiceFn service;
    SimTime busy_until = 0;
    bool paused = false;
    NetCounters counters;
  };
  struct Pending {
    NodeId from, to;
    wire::MessagePtr msg;
    std::size_t bytes;
  };

  static std::uint64_t channel_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  static std::uint64_t dc_pair_key(DcId a, DcId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void transmit(NodeId from, NodeId to, wire::MessagePtr msg, std::size_t bytes);
  void deliver(NodeId from, NodeId to, wire::MessagePtr msg, std::size_t bytes);
  void flush_blocked(DcId a, DcId b);

  Simulation& sim_;
  LatencyModel latency_;
  CodecMode mode_;
  wire::MessagePool pool_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, SimTime> last_arrival_;   // channel FIFO clamp
  std::unordered_set<std::uint64_t> colocated_;               // node-pair keys
  std::unordered_set<std::uint64_t> blocked_dc_pairs_;        // partitions
  std::unordered_map<std::uint64_t, std::deque<Pending>> blocked_queue_;  // per dc-pair
  std::unordered_map<NodeId, std::deque<Pending>> stalled_;               // per paused node
  std::uint64_t msgs_by_type_[wire::kNumMsgTypes] = {};
  std::uint64_t total_bytes_sent_ = 0;
};

}  // namespace paris::sim
