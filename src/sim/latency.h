#pragma once
// Network latency model. One-way delays between DCs are taken from a matrix
// calibrated to the ten AWS regions used in the paper's evaluation (§V-A):
// N. Virginia, Oregon, Ireland, Mumbai, Sydney, Canada, Seoul, Frankfurt,
// Singapore, Ohio — in that order, matching how the paper grows the
// deployment (3 DCs = first three, 5 DCs = first five, 10 DCs = all).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace paris::sim {

class LatencyModel {
 public:
  /// Builds the AWS-calibrated model for the first `num_dcs` regions (<=10).
  static LatencyModel aws(std::uint32_t num_dcs);

  /// Uniform latency everywhere (useful for unit tests).
  static LatencyModel uniform(std::uint32_t num_dcs, SimTime inter_dc_us,
                              SimTime intra_dc_us = 150);

  /// Mean one-way delay between two nodes' DCs (same-DC pairs use the
  /// intra-DC delay; `loopback` pairs — e.g. a client collocated with its
  /// coordinator — use the loopback delay).
  SimTime mean_one_way_us(DcId a, DcId b) const;

  /// Samples a delay: mean * U[1-jitter, 1+jitter].
  SimTime sample_one_way_us(DcId a, DcId b, Rng& rng) const;

  SimTime loopback_us() const { return loopback_us_; }
  SimTime intra_dc_us() const { return intra_dc_us_; }
  std::uint32_t num_dcs() const { return num_dcs_; }
  double jitter() const { return jitter_; }
  void set_jitter(double j) { jitter_ = j; }

  static const char* region_name(DcId dc);

 private:
  std::uint32_t num_dcs_ = 0;
  std::vector<SimTime> inter_us_;  // num_dcs x num_dcs, diagonal unused
  SimTime intra_dc_us_ = 150;
  SimTime loopback_us_ = 20;
  double jitter_ = 0.05;
};

}  // namespace paris::sim
