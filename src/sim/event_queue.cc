#include "sim/event_queue.h"

#include "common/assert.h"

namespace paris::sim {

void EventQueue::push(SimTime at, Fn fn) {
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  PARIS_DCHECK(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fn EventQueue::pop(SimTime* at) {
  PARIS_CHECK(!heap_.empty());
  // priority_queue::top() is const; the move is safe because we pop
  // immediately after and never touch the moved-from closure.
  Entry& top = const_cast<Entry&>(heap_.top());
  *at = top.at;
  Fn fn = std::move(top.fn);
  heap_.pop();
  return fn;
}

}  // namespace paris::sim
