#include "sim/event_queue.h"

namespace paris::sim {

EventQueue::~EventQueue() {
  // Destroy callables of still-pending events (cancelled slots already did).
  for (const Entry& e : heap_) {
    Slot& s = slot_at(e.slot);
    if (!s.cancelled) s.task.destroy();
  }
}

bool EventQueue::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slab_slots()) return false;
  Slot& s = slot_at(idx);
  // A stale generation means the event already ran (or was cancelled and its
  // slot recycled); release_slot bumps gen, so ids never alias.
  if (s.gen != gen || s.cancelled || !s.task.armed()) return false;
  s.task.destroy();  // free captured resources eagerly
  s.cancelled = true;
  --live_;
  return true;
}

SimTime EventQueue::next_time() {
  PARIS_DCHECK(live_ > 0);
  while (true) {
    const Entry& top = heap_.front();
    Slot& s = slot_at(top.slot);
    if (!s.cancelled) return top.at;
    const std::uint32_t idx = top.slot;
    pop_top();
    release_slot(idx);
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ == kNpos) {
    const std::size_t base = slab_slots();
    PARIS_CHECK_MSG(base + kBlockSlots <= kNpos, "event slab exhausted");
    blocks_.push_back(std::make_unique<Slot[]>(kBlockSlots));
    // Thread the fresh block onto the free list, last slot first so that
    // allocation order within the block is ascending (cache-friendly).
    for (std::size_t i = kBlockSlots; i-- > 0;) {
      Slot& s = blocks_.back()[i];
      s.next_free = free_head_;
      free_head_ = static_cast<std::uint32_t>(base + i);
    }
  }
  const std::uint32_t idx = free_head_;
  Slot& s = slot_at(idx);
  free_head_ = s.next_free;
  s.next_free = kNpos;
  return idx;
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slot_at(idx);
  ++s.gen;  // invalidates outstanding EventIds for this slot
  s.cancelled = false;
  s.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

}  // namespace paris::sim
