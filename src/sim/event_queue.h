#pragma once
// Min-heap of timestamped events. Ties are broken by insertion sequence so
// that execution order is fully deterministic.
//
// Allocation-free steady state: event callables live in fixed-size slots of
// a slab (recycled through a free list), and the heap orders small POD
// entries (time, seq, slot) — no std::function, no per-event heap traffic.
// push() returns an EventId that cancel() invalidates in O(1) (lazy
// deletion: the heap entry is discarded when it surfaces), which is what
// lets periodic timers reschedule without churning closures.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "sim/time.h"

namespace paris::sim {

/// Type-erased callable with inline storage. Tasks are constructed in place
/// inside a slab slot and relocated exactly once (onto the stack) when they
/// run. Callables larger than the inline buffer fall back to a heap box —
/// none of the simulator's hot-path closures do.
class InlineTask {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    void (*relocate)(void* dst, void* src);  ///< move-construct dst, destroy src
  };

  InlineTask() = default;
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  template <class F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    PARIS_DCHECK(ops_ == nullptr);
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kBoxedOps<D>;
    }
  }

  bool armed() const { return ops_ != nullptr; }

  /// Destroys the stored callable without running it.
  void destroy() {
    ops_->destroy(buf_);
    ops_ = nullptr;
  }

  /// Moves the callable into `local` (kInlineBytes, max-aligned) and disarms
  /// this task. The returned ops invoke/destroy the relocated copy.
  const Ops* relocate_out(void* local) {
    const Ops* ops = ops_;
    ops->relocate(local, buf_);
    ops_ = nullptr;
    return ops;
  }

 private:
  template <class D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* p) { static_cast<D*>(p)->~D(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
  };
  template <class D>
  static constexpr Ops kBoxedOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* p) { delete *static_cast<D**>(p); },
      [](void* dst, void* src) { std::memcpy(dst, src, sizeof(D*)); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

class EventQueue {
 public:
  /// Stable handle of a pending event: (slot generation << 32) | slot index.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEventId = ~0ull;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  template <class F>
  EventId push(SimTime at, F&& fn) {
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot_at(idx);
    s.task.emplace(std::forward<F>(fn));
    s.cancelled = false;
    heap_.push_back(Entry{at, next_seq_++, idx});
    sift_up(heap_.size() - 1);
    ++live_;
    return (static_cast<EventId>(s.gen) << 32) | idx;
  }

  /// Cancels a pending event in O(1) (lazy deletion; the callable is
  /// destroyed immediately). Returns true iff the event was still pending.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Earliest live event time; prunes cancelled entries off the top.
  /// Queue must not be empty.
  SimTime next_time();

  /// Pops the earliest live event and runs it: calls pre(at) after the event
  /// is removed but before its callable executes (so the caller can advance
  /// its clock), then invokes the callable. The callable may freely push and
  /// cancel events. Returns false if no live event remained.
  template <class Pre>
  bool run_next(Pre&& pre) {
    while (!heap_.empty()) {
      const Entry top = heap_.front();
      pop_top();
      Slot& s = slot_at(top.slot);
      if (s.cancelled) {
        release_slot(top.slot);
        continue;
      }
      alignas(std::max_align_t) unsigned char local[InlineTask::kInlineBytes];
      const InlineTask::Ops* ops = s.task.relocate_out(local);
      release_slot(top.slot);
      --live_;
      pre(top.at);
      ops->invoke(local);
      ops->destroy(local);
      return true;
    }
    return false;
  }

  /// Total slab capacity in slots (diagnostics: steady state must not grow).
  std::size_t slab_slots() const { return blocks_.size() * kBlockSlots; }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  static constexpr std::size_t kBlockSlots = 256;

  struct Slot {
    InlineTask task;
    std::uint32_t gen = 0;
    bool cancelled = false;
    std::uint32_t next_free = kNpos;
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  Slot& slot_at(std::uint32_t idx) { return blocks_[idx / kBlockSlots][idx % kBlockSlots]; }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void pop_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<std::unique_ptr<Slot[]>> blocks_;  ///< stable slot storage
  std::uint32_t free_head_ = kNpos;              ///< slot free list
  std::vector<Entry> heap_;                      ///< (time, seq) binary min-heap
  std::size_t live_ = 0;                         ///< non-cancelled pending events
  std::uint64_t next_seq_ = 0;
};

}  // namespace paris::sim
