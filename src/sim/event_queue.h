#pragma once
// Min-heap of timestamped events. Ties are broken by insertion sequence so
// that execution order is fully deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace paris::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

class EventQueue {
 public:
  using Fn = std::function<void()>;

  void push(SimTime at, Fn fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  SimTime next_time() const;

  /// Pops and returns the earliest event. Queue must not be empty.
  Fn pop(SimTime* at);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace paris::sim
