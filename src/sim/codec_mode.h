#pragma once
// Codec accounting mode of the simulated network, split out of network.h so
// configuration structs can name it without pulling in the whole simulator.

namespace paris::sim {

/// kBytes encodes + decodes every message through src/wire (default in
/// tests/examples); kSizeOnly skips the byte round-trip but still accounts
/// sizes (used by the large benchmark sweeps).
enum class CodecMode { kBytes, kSizeOnly };

}  // namespace paris::sim
