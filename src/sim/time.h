#pragma once
// Time unit shared by the simulator and the runtime abstraction: plain
// microseconds. For the sim backend this is simulated time since simulation
// start; for the thread backend it is steady-clock time since backend
// construction. Protocol code treats it as an opaque monotonic µs counter.

#include <cstdint>

namespace paris::sim {

/// Microseconds since the runtime's epoch (simulation start / backend start).
using SimTime = std::uint64_t;

}  // namespace paris::sim
