#include "sim/latency.h"

#include "common/assert.h"

namespace paris::sim {

namespace {

constexpr int kMaxRegions = 10;
const char* kRegionNames[kMaxRegions] = {
    "us-east-1 (N. Virginia)", "us-west-2 (Oregon)",   "eu-west-1 (Ireland)",
    "ap-south-1 (Mumbai)",     "ap-southeast-2 (Sydney)", "ca-central-1 (Canada)",
    "ap-northeast-2 (Seoul)",  "eu-central-1 (Frankfurt)", "ap-southeast-1 (Singapore)",
    "us-east-2 (Ohio)"};

// Round-trip times in milliseconds between the ten regions (public
// cloudping-style measurements, rounded). One-way = RTT / 2.
// Order: IAD, PDX, DUB, BOM, SYD, YUL, ICN, FRA, SIN, CMH.
constexpr double kRttMs[kMaxRegions][kMaxRegions] = {
    //  IAD   PDX   DUB   BOM   SYD   YUL   ICN   FRA   SIN   CMH
    {0, 70, 76, 182, 198, 16, 182, 88, 216, 12},      // IAD
    {70, 0, 136, 216, 162, 64, 126, 158, 170, 50},    // PDX
    {76, 136, 0, 122, 260, 70, 230, 25, 180, 80},     // DUB
    {182, 216, 122, 0, 154, 190, 130, 110, 62, 188},  // BOM
    {198, 162, 260, 154, 0, 200, 140, 280, 92, 190},  // SYD
    {16, 64, 70, 190, 200, 0, 180, 90, 220, 25},      // YUL
    {182, 126, 230, 130, 140, 180, 0, 240, 70, 170},  // ICN
    {88, 158, 25, 110, 280, 90, 240, 0, 160, 95},     // FRA
    {216, 170, 180, 62, 92, 220, 70, 160, 0, 210},    // SIN
    {12, 50, 80, 188, 190, 25, 170, 95, 210, 0},      // CMH
};

}  // namespace

const char* LatencyModel::region_name(DcId dc) {
  PARIS_CHECK(dc < kMaxRegions);
  return kRegionNames[dc];
}

LatencyModel LatencyModel::aws(std::uint32_t num_dcs) {
  PARIS_CHECK_MSG(num_dcs >= 1 && num_dcs <= kMaxRegions, "aws model supports 1..10 DCs");
  LatencyModel m;
  m.num_dcs_ = num_dcs;
  m.inter_us_.assign(static_cast<std::size_t>(num_dcs) * num_dcs, 0);
  for (std::uint32_t a = 0; a < num_dcs; ++a)
    for (std::uint32_t b = 0; b < num_dcs; ++b)
      m.inter_us_[a * num_dcs + b] = static_cast<SimTime>(kRttMs[a][b] * 1000.0 / 2.0);
  return m;
}

LatencyModel LatencyModel::uniform(std::uint32_t num_dcs, SimTime inter_dc_us,
                                   SimTime intra_dc_us) {
  PARIS_CHECK(num_dcs >= 1);
  LatencyModel m;
  m.num_dcs_ = num_dcs;
  m.intra_dc_us_ = intra_dc_us;
  m.inter_us_.assign(static_cast<std::size_t>(num_dcs) * num_dcs, inter_dc_us);
  return m;
}

SimTime LatencyModel::mean_one_way_us(DcId a, DcId b) const {
  PARIS_DCHECK(a < num_dcs_ && b < num_dcs_);
  if (a == b) return intra_dc_us_;
  return inter_us_[static_cast<std::size_t>(a) * num_dcs_ + b];
}

SimTime LatencyModel::sample_one_way_us(DcId a, DcId b, Rng& rng) const {
  const SimTime mean = mean_one_way_us(a, b);
  if (jitter_ <= 0) return mean;
  const double factor = 1.0 + (rng.next_double() * 2.0 - 1.0) * jitter_;
  const auto v = static_cast<SimTime>(static_cast<double>(mean) * factor);
  return v == 0 ? 1 : v;
}

}  // namespace paris::sim
