#pragma once
// Deterministic single-threaded discrete-event simulation loop.
//
// This is the substitute for the paper's AWS deployment (see DESIGN.md §2):
// protocol code observes only message deliveries and timer fires, both of
// which are totally ordered by (time, insertion seq), so a run is a pure
// function of its configuration and seed.
//
// Steady-state scheduling is allocation-free: one-shot events go through the
// EventQueue slab, and periodic timers live in a recycled timer table — each
// tick reschedules a 16-byte thunk instead of copying the user closure.

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace paris::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules fn at absolute time `at` (>= now).
  template <class F>
  void at(SimTime t, F&& fn) {
    PARIS_DCHECK(t >= now_);
    queue_.push(t < now_ ? now_ : t, std::forward<F>(fn));
  }
  /// Schedules fn `delay` microseconds from now.
  template <class F>
  void after(SimTime delay, F&& fn) {
    at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules fn every `period` µs starting at now + phase. The returned
  /// handle cancels the timer when destroyed or reset.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel() {
      if (sim_ != nullptr) {
        sim_->cancel_timer(idx_, gen_);
        sim_ = nullptr;
      }
    }
    ~PeriodicHandle() { cancel(); }
    PeriodicHandle(PeriodicHandle&& o) noexcept : sim_(o.sim_), idx_(o.idx_), gen_(o.gen_) {
      o.sim_ = nullptr;
    }
    PeriodicHandle& operator=(PeriodicHandle&& o) noexcept {
      if (this != &o) {
        cancel();
        sim_ = o.sim_;
        idx_ = o.idx_;
        gen_ = o.gen_;
        o.sim_ = nullptr;
      }
      return *this;
    }

   private:
    friend class Simulation;
    Simulation* sim_ = nullptr;
    std::uint32_t idx_ = 0;
    std::uint32_t gen_ = 0;
  };
  PeriodicHandle every(SimTime period, SimTime phase, std::function<void()> fn);

  /// Runs events until simulated time t (inclusive of events at t).
  void run_until(SimTime t);
  /// Runs until the queue drains (only safe when no periodic timers exist).
  void run_all();
  /// Executes a single event; returns false if the queue is empty.
  bool step();

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  static constexpr std::uint32_t kNoTimer = 0xffffffffu;

  struct Timer {
    std::function<void()> fn;
    SimTime period = 0;
    EventQueue::EventId pending = EventQueue::kInvalidEventId;
    std::uint32_t gen = 0;
    bool alive = false;
    std::uint32_t next_free = kNoTimer;
  };

  /// 16-byte rescheduling thunk; the closure itself stays in timers_.
  struct TimerThunk {
    Simulation* sim;
    std::uint32_t idx;
    std::uint32_t gen;
    void operator()() const { sim->timer_fire(idx, gen); }
  };

  void timer_fire(std::uint32_t idx, std::uint32_t gen);
  void cancel_timer(std::uint32_t idx, std::uint32_t gen);
  std::uint32_t acquire_timer();
  void release_timer(std::uint32_t idx);

  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  std::uint64_t events_executed_ = 0;
  // deque, not vector: timer_fire invokes t.fn() in place, and the callback
  // may create timers — element addresses must survive growth. Slots are
  // never erased (recycled via the free list), so references stay valid.
  std::deque<Timer> timers_;
  std::uint32_t free_timer_ = kNoTimer;
};

}  // namespace paris::sim
