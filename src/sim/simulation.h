#pragma once
// Deterministic single-threaded discrete-event simulation loop.
//
// This is the substitute for the paper's AWS deployment (see DESIGN.md §2):
// protocol code observes only message deliveries and timer fires, both of
// which are totally ordered by (time, insertion seq), so a run is a pure
// function of its configuration and seed.

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace paris::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules fn at absolute time `at` (>= now).
  void at(SimTime t, EventQueue::Fn fn);
  /// Schedules fn `delay` microseconds from now.
  void after(SimTime delay, EventQueue::Fn fn) { at(now_ + delay, std::move(fn)); }

  /// Schedules fn every `period` µs starting at now + phase. The returned
  /// handle cancels the timer when destroyed or reset.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel() {
      if (alive_) *alive_ = false;
    }
    ~PeriodicHandle() { cancel(); }
    PeriodicHandle(PeriodicHandle&&) = default;
    PeriodicHandle& operator=(PeriodicHandle&& o) {
      cancel();
      alive_ = std::move(o.alive_);
      return *this;
    }

   private:
    friend class Simulation;
    std::shared_ptr<bool> alive_;
  };
  PeriodicHandle every(SimTime period, SimTime phase, std::function<void()> fn);

  /// Runs events until simulated time t (inclusive of events at t).
  void run_until(SimTime t);
  /// Runs until the queue drains (only safe when no periodic timers exist).
  void run_all();
  /// Executes a single event; returns false if the queue is empty.
  bool step();

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace paris::sim
