#pragma once
// An actor is anything that can receive protocol messages: servers and
// client sessions. The network invokes on_message after the (simulated)
// transmission delay and, for server nodes, after the CPU service queue.

#include "common/types.h"
#include "wire/messages.h"

namespace paris::sim {

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_message(NodeId from, const wire::Message& m) = 0;
};

}  // namespace paris::sim
