#pragma once
// Compatibility alias: the actor interface moved to the runtime layer
// (runtime/actor.h) when the protocol stack was decoupled from the
// simulator. sim::Network still registers plain Actors.

#include "runtime/actor.h"

namespace paris::sim {

using Actor = runtime::Actor;

}  // namespace paris::sim
