#include "sim/simulation.h"

namespace paris::sim {

Simulation::PeriodicHandle Simulation::every(SimTime period, SimTime phase,
                                             std::function<void()> fn) {
  PARIS_CHECK(period > 0);
  const std::uint32_t idx = acquire_timer();
  Timer& t = timers_[idx];
  t.fn = std::move(fn);
  t.period = period;
  t.alive = true;
  t.pending = queue_.push(now_ + phase, TimerThunk{this, idx, t.gen});

  PeriodicHandle h;
  h.sim_ = this;
  h.idx_ = idx;
  h.gen_ = t.gen;
  return h;
}

void Simulation::timer_fire(std::uint32_t idx, std::uint32_t gen) {
  Timer& t = timers_[idx];  // deque: address stable even if fn() adds timers
  if (t.gen != gen) return;  // slot already recycled for a newer timer
  if (!t.alive) {            // cancelled while this fire was in flight
    release_timer(idx);
    return;
  }
  t.fn();
  // fn() may have cancelled this timer (the slot is only recycled here, so
  // gen cannot have moved): re-check before rescheduling.
  if (!t.alive) {
    release_timer(idx);
    return;
  }
  t.pending = queue_.push(now_ + t.period, TimerThunk{this, idx, gen});
}

void Simulation::cancel_timer(std::uint32_t idx, std::uint32_t gen) {
  if (idx >= timers_.size()) return;
  Timer& t = timers_[idx];
  if (t.gen != gen || !t.alive) return;
  t.alive = false;
  // If the next fire is still pending, kill it and recycle now; otherwise
  // the timer is firing this very moment and timer_fire recycles it.
  if (queue_.cancel(t.pending)) release_timer(idx);
}

std::uint32_t Simulation::acquire_timer() {
  if (free_timer_ == kNoTimer) {
    timers_.emplace_back();
    return static_cast<std::uint32_t>(timers_.size() - 1);
  }
  const std::uint32_t idx = free_timer_;
  free_timer_ = timers_[idx].next_free;
  timers_[idx].next_free = kNoTimer;
  return idx;
}

void Simulation::release_timer(std::uint32_t idx) {
  Timer& t = timers_[idx];
  ++t.gen;  // invalidates outstanding handles and in-flight thunks
  t.alive = false;
  t.fn = nullptr;
  t.pending = EventQueue::kInvalidEventId;
  t.next_free = free_timer_;
  free_timer_ = idx;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

void Simulation::run_all() {
  while (step()) {
  }
}

bool Simulation::step() {
  return queue_.run_next([this](SimTime at) {
    PARIS_DCHECK(at >= now_);
    now_ = at;
    ++events_executed_;
  });
}

}  // namespace paris::sim
