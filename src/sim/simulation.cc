#include "sim/simulation.h"

#include "common/assert.h"

namespace paris::sim {

void Simulation::at(SimTime t, EventQueue::Fn fn) {
  PARIS_DCHECK(t >= now_);
  queue_.push(t < now_ ? now_ : t, std::move(fn));
}

Simulation::PeriodicHandle Simulation::every(SimTime period, SimTime phase,
                                             std::function<void()> fn) {
  PARIS_CHECK(period > 0);
  PeriodicHandle h;
  h.alive_ = std::make_shared<bool>(true);
  auto alive = h.alive_;
  // Self-rescheduling closure; stops when the handle dies.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, fn = std::move(fn), alive, tick]() {
    if (!*alive) return;
    fn();
    if (*alive) after(period, *tick);
  };
  after(phase, *tick);
  return h;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

void Simulation::run_all() {
  while (step()) {
  }
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  SimTime at;
  auto fn = queue_.pop(&at);
  PARIS_DCHECK(at >= now_);
  now_ = at;
  ++events_executed_;
  fn();
  return true;
}

}  // namespace paris::sim
