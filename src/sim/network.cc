#include "sim/network.h"

#include <algorithm>

#include "common/assert.h"

namespace paris::sim {

NodeId Network::add_node(Actor* actor, DcId dc, ServiceFn service) {
  PARIS_CHECK(actor != nullptr);
  PARIS_CHECK_MSG(dc < latency_.num_dcs(), "node DC outside latency model");
  nodes_.push_back(Node{actor, dc, std::move(service), 0, false, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::set_colocated(NodeId a, NodeId b) {
  colocated_.insert(channel_key(a, b));
  colocated_.insert(channel_key(b, a));
}

void Network::send(NodeId from, NodeId to, wire::MessagePtr msg) {
  PARIS_DCHECK(from < nodes_.size() && to < nodes_.size());
  PARIS_DCHECK(msg != nullptr);
  const std::size_t bytes = 1 + msg->wire_size();

  auto& src = nodes_[from];
  src.counters.msgs_sent++;
  src.counters.bytes_sent += bytes;
  total_bytes_sent_ += bytes;
  msgs_by_type_[static_cast<int>(msg->type())]++;

  const DcId da = src.dc, db = nodes_[to].dc;
  if (dcs_partitioned(da, db)) {
    // TCP stalls across the partition: buffer in order, flush on heal.
    blocked_queue_[dc_pair_key(da, db)].push_back(Pending{from, to, std::move(msg), bytes});
    return;
  }
  transmit(from, to, std::move(msg), bytes);
}

void Network::transmit(NodeId from, NodeId to, wire::MessagePtr msg, std::size_t bytes) {
  const DcId da = nodes_[from].dc, db = nodes_[to].dc;
  SimTime delay;
  if (colocated_.count(channel_key(from, to))) {
    delay = latency_.loopback_us();
  } else {
    delay = latency_.sample_one_way_us(da, db, sim_.rng());
  }
  SimTime arrival = sim_.now() + delay;
  auto [it, inserted] = last_arrival_.try_emplace(channel_key(from, to), 0);
  arrival = std::max(arrival, it->second);  // FIFO per channel despite jitter
  it->second = arrival;

  sim_.at(arrival, [this, from, to, msg = std::move(msg), bytes]() mutable {
    deliver(from, to, std::move(msg), bytes);
  });
}

void Network::deliver(NodeId from, NodeId to, wire::MessagePtr msg, std::size_t bytes) {
  auto& dst = nodes_[to];
  if (dst.paused) {
    // Crashed/stalled process: hold the message until failover.
    stalled_[to].push_back(Pending{from, to, std::move(msg), bytes});
    return;
  }
  dst.counters.msgs_recv++;
  dst.counters.bytes_recv += bytes;

  // CPU service queue: processing starts when the node frees up and takes
  // service(msg) µs; the handler observes the message at completion time.
  SimTime svc = 0;
  if (dst.service) svc = dst.service(*msg);
  const SimTime start = std::max(sim_.now(), dst.busy_until);
  const SimTime done = start + svc;
  dst.busy_until = done;
  dst.counters.cpu_busy_us += svc;

  auto dispatch = [this, from, to, msg = std::move(msg)]() {
    if (mode_ == CodecMode::kBytes) {
      // Exercise the codec on every delivery: encode, then decode a fresh
      // copy and hand that to the handler.
      std::vector<std::uint8_t> buf;
      wire::encode_message(*msg, buf);
      wire::Decoder dec(buf);
      auto copy = wire::decode_message(dec);
      PARIS_DCHECK(dec.done());
      nodes_[to].actor->on_message(from, *copy);
    } else {
      nodes_[to].actor->on_message(from, *msg);
    }
  };
  if (done == sim_.now()) {
    dispatch();
  } else {
    sim_.at(done, std::move(dispatch));
  }
}

void Network::pause_node(NodeId n) { nodes_[n].paused = true; }

void Network::resume_node(NodeId n) {
  auto& node = nodes_[n];
  if (!node.paused) return;
  node.paused = false;
  const auto it = stalled_.find(n);
  if (it == stalled_.end()) return;
  auto pending = std::move(it->second);
  stalled_.erase(it);
  // Re-deliver in arrival order, at now, through the normal CPU queue.
  for (auto& p : pending) deliver(p.from, p.to, std::move(p.msg), p.bytes);
}

void Network::charge_cpu(NodeId node, SimTime us) {
  auto& n = nodes_[node];
  n.busy_until = std::max(n.busy_until, sim_.now()) + us;
  n.counters.cpu_busy_us += us;
}

void Network::partition_dcs(DcId a, DcId b) {
  PARIS_CHECK(a != b);
  blocked_dc_pairs_.insert(dc_pair_key(a, b));
}

void Network::heal_dcs(DcId a, DcId b) {
  blocked_dc_pairs_.erase(dc_pair_key(a, b));
  flush_blocked(a, b);
}

void Network::isolate_dc(DcId dc) {
  for (DcId d = 0; d < latency_.num_dcs(); ++d)
    if (d != dc) partition_dcs(dc, d);
}

void Network::heal_all() {
  auto pairs = blocked_dc_pairs_;
  for (auto key : pairs) {
    const DcId a = static_cast<DcId>(key >> 32);
    const DcId b = static_cast<DcId>(key & 0xffffffffu);
    heal_dcs(a, b);
  }
}

bool Network::dcs_partitioned(DcId a, DcId b) const {
  if (a == b) return false;
  return blocked_dc_pairs_.count(dc_pair_key(a, b)) > 0;
}

void Network::flush_blocked(DcId a, DcId b) {
  auto it = blocked_queue_.find(dc_pair_key(a, b));
  if (it == blocked_queue_.end()) return;
  auto pending = std::move(it->second);
  blocked_queue_.erase(it);
  for (auto& p : pending) transmit(p.from, p.to, std::move(p.msg), p.bytes);
}

}  // namespace paris::sim
