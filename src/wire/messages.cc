#include "wire/messages.h"

namespace paris::wire {

const char* msg_type_name(MsgType t) {
  switch (t) {
#define PARIS_MSG_NAME_CASE(T) \
  case T::kType:               \
    return #T;
    PARIS_FOREACH_MESSAGE(PARIS_MSG_NAME_CASE)
#undef PARIS_MSG_NAME_CASE
  }
  return "?";
}

void encode_message(const Message& m, std::vector<std::uint8_t>& out) {
  Encoder e(out);
  e.put_u8(static_cast<std::uint8_t>(m.type()));
  m.encode(e);
}

std::unique_ptr<Message> decode_message(Decoder& d) {
  const auto t = static_cast<MsgType>(d.get_u8());
  switch (t) {
#define PARIS_MSG_DECODE_CASE(T) \
  case T::kType:                 \
    return T::decode(d);
    PARIS_FOREACH_MESSAGE(PARIS_MSG_DECODE_CASE)
#undef PARIS_MSG_DECODE_CASE
  }
  PARIS_CHECK_MSG(false, "unknown message type");
  return nullptr;
}

MessagePtr decode_message_pooled(Decoder& d, MessagePool& pool) {
  const auto t = static_cast<MsgType>(d.get_u8());
  switch (t) {
#define PARIS_MSG_DECODE_POOLED_CASE(T)  \
  case T::kType: {                       \
    PooledPtr<T> m = pool.make<T>();     \
    detail::WireReader r{d};             \
    T::fields(*m, r);                    \
    return MessagePtr(std::move(m));     \
  }
    PARIS_FOREACH_MESSAGE(PARIS_MSG_DECODE_POOLED_CASE)
#undef PARIS_MSG_DECODE_POOLED_CASE
  }
  PARIS_CHECK_MSG(false, "unknown message type");
  return nullptr;
}

}  // namespace paris::wire
