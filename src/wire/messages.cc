#include "wire/messages.h"

namespace paris::wire {

const char* msg_type_name(MsgType t) {
  switch (t) {
#define PARIS_MSG_NAME_CASE(T) \
  case T::kType:               \
    return #T;
    PARIS_FOREACH_MESSAGE(PARIS_MSG_NAME_CASE)
#undef PARIS_MSG_NAME_CASE
  }
  return "?";
}

void encode_message(const Message& m, std::vector<std::uint8_t>& out) {
  Encoder e(out);
  e.put_u8(static_cast<std::uint8_t>(m.type()));
  m.encode(e);
}

std::unique_ptr<Message> decode_message(Decoder& d) {
  const auto t = static_cast<MsgType>(d.get_u8());
  switch (t) {
#define PARIS_MSG_DECODE_CASE(T) \
  case T::kType:                 \
    return T::decode(d);
    PARIS_FOREACH_MESSAGE(PARIS_MSG_DECODE_CASE)
#undef PARIS_MSG_DECODE_CASE
  }
  PARIS_CHECK_MSG(false, "unknown message type");
  return nullptr;
}

namespace {

/// Non-aborting counterpart of Decoder for trust-boundary validation: any
/// malformation latches ok_ = false and every later read returns a benign
/// zero without consuming, so a validation pass can never crash, loop on a
/// huge fake count, or read out of bounds.
class TryDecoder {
 public:
  TryDecoder(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  std::uint64_t get_varint() {
    if (!ok_) return 0;
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (p_ >= end_ || shift >= 64) return fail();
      const std::uint8_t b = *p_++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }

  std::uint8_t get_u8() {
    if (!ok_ || p_ >= end_) return static_cast<std::uint8_t>(fail());
    return *p_++;
  }

  /// Length-prefixed bytes/blob: skipped, never materialized.
  void skip_bytes() {
    const std::uint64_t n = get_varint();
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      fail();
      return;
    }
    p_ += n;
  }

  /// Element count: each element costs >= 1 byte on the wire, so any count
  /// above the remaining bytes is malformed — rejecting it here bounds the
  /// validator's loop work by the frame size.
  std::uint64_t get_count() {
    const std::uint64_t n = get_varint();
    if (!ok_ || n > static_cast<std::size_t>(end_ - p_)) return fail();
    return n;
  }

  bool ok() const { return ok_; }
  bool done() const { return ok_ && p_ == end_; }
  const std::uint8_t* cur() const { return p_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  std::uint64_t fail() {
    ok_ = false;
    return 0;
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

/// Field visitor that PARSES (and discards) the same wire layout WireReader
/// materializes, driven by each message's own fields() declaration over a
/// default-constructed dummy — one source of truth for the format, zero
/// allocation, no aborts.
struct WireValidator {
  TryDecoder& d;
  void operator()(WriteKV&) {
    d.get_varint();  // k
    d.skip_bytes();  // v
    const std::uint8_t flags = d.get_u8();
    if (flags & 2u) d.get_varint();  // num
  }
  void operator()(Item&) {
    d.get_varint();  // k
    d.skip_bytes();  // v
    d.get_varint();  // ut
    d.get_varint();  // tx
    const std::uint64_t sr_flags = d.get_varint();
    if (sr_flags & 1u) d.get_varint();  // num
  }
  void operator()(std::uint8_t&) { d.get_u8(); }
  void operator()(std::uint64_t&) { d.get_varint(); }
  void operator()(std::uint32_t&) { d.get_varint(); }
  void operator()(std::uint16_t&) { d.get_varint(); }
  void operator()(std::int64_t&) { d.get_varint(); }
  void operator()(std::string&) { d.skip_bytes(); }
  void operator()(Timestamp&) { d.get_varint(); }
  void operator()(TxId&) { d.get_varint(); }
  void operator()(std::vector<std::uint8_t>&) { d.skip_bytes(); }
  template <class T>
  void operator()(std::vector<T>&) {
    const std::uint64_t n = d.get_count();
    T scratch{};
    for (std::uint64_t i = 0; i < n && d.ok(); ++i) (*this)(scratch);
  }
  template <class T>
  void operator()(RecyclingVec<T>&) {
    const std::uint64_t n = d.get_count();
    T scratch{};
    for (std::uint64_t i = 0; i < n && d.ok(); ++i) (*this)(scratch);
  }
  template <class T>
    requires requires(T& t, WireValidator& v) { T::fields(t, v); }
  void operator()(T& v) {
    T::fields(v, *this);
  }
};

bool validate_impl(const std::uint8_t* data, std::size_t len, int depth) {
  if (len == 0 || depth > 2) return false;
  TryDecoder d(data, len);
  const auto t = static_cast<MsgType>(d.get_u8());
  // A ReliableFrame carries a nested encoded message: validate the payload
  // recursively, since the reliable layer will hand it to the strict
  // decoder on delivery. Empty payloads are legal placeholders.
  if (t == MsgType::kReliableFrame) {
    d.get_varint();  // seq
    d.get_varint();  // dst_epoch
    d.get_u8();      // inner_type
    const std::uint64_t n = d.get_count();
    if (!d.ok()) return false;
    // The payload blob is the final field: it must span exactly the rest of
    // the buffer, and (when non-empty) itself be a valid encoded message.
    if (d.remaining() != n) return false;
    return n == 0 || validate_impl(d.cur(), static_cast<std::size_t>(n), depth + 1);
  }
  WireValidator v{d};
  switch (t) {
#define PARIS_MSG_VALIDATE_CASE(T) \
  case T::kType: {                 \
    T dummy;                       \
    T::fields(dummy, v);           \
    return d.done();               \
  }
    PARIS_FOREACH_MESSAGE(PARIS_MSG_VALIDATE_CASE)
#undef PARIS_MSG_VALIDATE_CASE
  }
  return false;  // unknown type tag
}

}  // namespace

bool validate_encoded_message(const std::uint8_t* data, std::size_t len) {
  return validate_impl(data, len, 0);
}

MessagePtr decode_message_pooled(Decoder& d, MessagePool& pool) {
  const auto t = static_cast<MsgType>(d.get_u8());
  switch (t) {
#define PARIS_MSG_DECODE_POOLED_CASE(T)  \
  case T::kType: {                       \
    PooledPtr<T> m = pool.make<T>();     \
    detail::WireReader r{d};             \
    T::fields(*m, r);                    \
    return MessagePtr(std::move(m));     \
  }
    PARIS_FOREACH_MESSAGE(PARIS_MSG_DECODE_POOLED_CASE)
#undef PARIS_MSG_DECODE_POOLED_CASE
  }
  PARIS_CHECK_MSG(false, "unknown message type");
  return nullptr;
}

}  // namespace paris::wire
