#pragma once
// Binary wire format: LEB128 varints for integers, length-prefixed bytes for
// values. This stands in for the paper's Google Protobufs; the simulated
// network (kBytes mode) encodes and decodes every message through this codec.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.h"

namespace paris::wire {

/// Number of bytes varint-encoding v takes (1..10).
constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Append-only byte sink.
class Encoder {
 public:
  explicit Encoder(std::vector<std::uint8_t>& out) : out_(out) {}

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_bytes(const std::string& s) {
    put_varint(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Length-prefixed raw byte blob (e.g. a nested encoded message).
  void put_blob(const std::vector<std::uint8_t>& b) {
    put_varint(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked reader over an encoded buffer. Malformed input trips a
/// PARIS_CHECK: inside the simulator any decode failure is a codec bug, not
/// an external-input condition.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf) : Decoder(buf.data(), buf.size()) {}

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      PARIS_CHECK_MSG(p_ < end_, "varint truncated");
      const std::uint8_t b = *p_++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
      PARIS_CHECK_MSG(shift < 64, "varint overlong");
    }
    return v;
  }

  std::uint8_t get_u8() {
    PARIS_CHECK_MSG(p_ < end_, "u8 truncated");
    return *p_++;
  }

  std::string get_bytes() {
    const std::uint64_t n = get_varint();
    PARIS_CHECK_MSG(static_cast<std::size_t>(end_ - p_) >= n, "bytes truncated");
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  /// Like get_bytes but assigns into an existing string, so a recycled
  /// message field keeps its grown capacity (no temporary, no allocation
  /// once warmed).
  void get_bytes_into(std::string& out) {
    const std::uint64_t n = get_varint();
    PARIS_CHECK_MSG(static_cast<std::size_t>(end_ - p_) >= n, "bytes truncated");
    out.assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
  }

  /// Counterpart of Encoder::put_blob; assigns into an existing vector so a
  /// recycled field keeps its grown capacity.
  void get_blob_into(std::vector<std::uint8_t>& out) {
    const std::uint64_t n = get_varint();
    PARIS_CHECK_MSG(static_cast<std::size_t>(end_ - p_) >= n, "blob truncated");
    out.assign(p_, p_ + n);
    p_ += n;
  }

  bool done() const { return p_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace paris::wire
