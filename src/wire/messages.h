#pragma once
// All protocol messages exchanged between clients and servers.
//
// Each message declares its fields once via a static `fields(self, visitor)`
// template; encoding, decoding and wire sizing are derived from that single
// declaration (see field visitors at the bottom). Adding a message means:
// add the struct, add it to the MsgType enum, and register it in the
// PARIS_FOREACH_MESSAGE X-macro.

#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/hlc.h"
#include "common/types.h"
#include "wire/buffer.h"
#include "wire/recycling_vec.h"

namespace paris::wire {

enum class MsgType : std::uint8_t {
  kClientStartReq = 1,
  kClientStartResp,
  kClientReadReq,
  kClientReadResp,
  kClientCommitReq,
  kClientCommitResp,
  kTxEnd,
  kReadSliceReq,
  kReadSliceResp,
  kPrepareReq,
  kPrepareResp,
  kCommit2pc,
  kReplicateBatch,
  kHeartbeat,
  kGossipUp,
  kGossipRoot,
  kUstDown,
  kReliableFrame,
  kReliableAck,
  kSnapshotRequest,
  kSnapshotChunk,
  kCatchUpRequest,
  kCatchUpChunk,
  kSketchReport,
  kMigrateFence,
  kMigrateFlush,
  kMigrateChain,
  kMigrateReady,
  kMigrateCommit,
  kMigrateCommitAck,
};

const char* msg_type_name(MsgType t);
inline constexpr int kNumMsgTypes = static_cast<int>(MsgType::kMigrateCommitAck) + 1;

// ---------------------------------------------------------------------------
// Plain data sub-records.
// ---------------------------------------------------------------------------

/// A full item version as stored and returned by reads: §IV-A
/// d = <k, v, ut, idT, sr>.
struct Item {
  Key k = 0;
  Value v;
  std::int64_t num = 0;  ///< binary payload: merged sum for counter reads
  Timestamp ut;
  TxId tx;
  DcId sr = 0;

  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.k);
    f(s.v);
    f(s.num);
    f(s.ut);
    f(s.tx);
    f(s.sr);
  }
  friend bool operator==(const Item&, const Item&) = default;
};

/// Write semantics (§II-B conflict resolution): registers converge by
/// last-writer-wins; counter deltas converge by summation, a commutative
/// and associative merge that never loses concurrent updates.
enum class WriteKind : std::uint8_t {
  kRegisterPut = 0,
  kCounterAdd = 1,
};

/// Read semantics, chosen per READ call.
enum class ReadMode : std::uint8_t {
  kRegister = 0,  ///< freshest visible version (LWW)
  kCounter = 1,   ///< sum of visible deltas since the last register write
};

/// A buffered client write (key + new value or delta). Counter deltas carry
/// their value as a binary integer in `num` (v stays empty), so the apply
/// and read paths never round-trip through decimal strings; the string form
/// (v = "42", num = 0) is still accepted for hand-built writes.
struct WriteKV {
  Key k = 0;
  Value v;
  std::int64_t num = 0;   ///< binary counter delta (WriteKind::kCounterAdd)
  std::uint8_t kind = 0;  ///< WriteKind

  WriteKV() = default;
  WriteKV(Key key, Value val, WriteKind wk = WriteKind::kRegisterPut)
      : k(key), v(std::move(val)), kind(static_cast<std::uint8_t>(wk)) {}
  /// Binary counter delta.
  WriteKV(Key key, std::int64_t delta)
      : k(key), num(delta), kind(static_cast<std::uint8_t>(WriteKind::kCounterAdd)) {}

  WriteKind write_kind() const { return static_cast<WriteKind>(kind); }

  /// Numeric value of a counter delta, whichever form it was built in.
  std::int64_t delta() const {
    return v.empty() ? num : std::strtoll(v.c_str(), nullptr, 10);
  }

  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.k);
    f(s.v);
    f(s.num);
    f(s.kind);
  }
  friend bool operator==(const WriteKV&, const WriteKV&) = default;
};

/// One transaction inside a replication group. `writes` recycles its
/// elements so a reused ReplicateTxn keeps each WriteKV's value-string
/// capacity — without this, shrinking the writes count would free the
/// strings and any non-SSO value would re-allocate on the next decode.
struct ReplicateTxn {
  TxId tx;
  RecyclingVec<WriteKV> writes;

  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.writes);
  }
  friend bool operator==(const ReplicateTxn&, const ReplicateTxn&) = default;
};

/// All transactions applied at the same commit timestamp (Alg. 4 line 11).
/// `txs` recycles its elements (RecyclingVec) so that a pooled
/// ReplicateBatch keeps every nesting level's capacity across reuse — the
/// thread runtime decodes one per ΔR per channel, which must not allocate
/// in steady state.
struct ReplicateGroup {
  Timestamp ct;
  RecyclingVec<ReplicateTxn> txs;

  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.ct);
    f(s.txs);
  }
  friend bool operator==(const ReplicateGroup&, const ReplicateGroup&) = default;
};

// ---------------------------------------------------------------------------
// Message base.
// ---------------------------------------------------------------------------

class MessagePool;
class MessagePtr;
template <class T>
class PooledPtr;
template <class T>
PooledPtr<T> make_message();

struct Message {
  virtual ~Message() = default;
  virtual MsgType type() const = 0;
  virtual void encode(Encoder& e) const = 0;
  /// Wire size of the payload (excludes the 1-byte type tag).
  virtual std::size_t wire_size() const = 0;
  /// Clears every payload field to its default while keeping vector/string
  /// capacity, so a pooled message can be rebuilt in place.
  virtual void reset_payload() = 0;

 private:
  friend class MessagePool;
  friend class MessagePtr;
  template <class T>
  friend class PooledPtr;
  template <class T>
  friend PooledPtr<T> make_message();
  friend void unref_message(const Message* m);

  // Intrusive refcount + owning pool (null for unpooled messages). The
  // simulation is single-threaded by design, so plain counters suffice.
  mutable std::uint32_t rc_ = 0;
  mutable MessagePool* pool_ = nullptr;
};

void unref_message(const Message* m);

/// Shared, immutable handle to a protocol message in flight. Releasing the
/// last reference returns the message to its pool (or deletes an unpooled
/// one). Replaces shared_ptr<const Message>: no control block, no atomics,
/// no allocation on the send path.
class MessagePtr {
 public:
  MessagePtr() = default;
  MessagePtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  MessagePtr(const MessagePtr& o) : p_(o.p_) {
    if (p_ != nullptr) ++p_->rc_;
  }
  MessagePtr(MessagePtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  /// Adopts a builder handle (typically just-filled fields); implicit so
  /// freshly built messages can be passed straight to send().
  template <class T>
  MessagePtr(PooledPtr<T>&& o) noexcept;  // NOLINT(google-explicit-constructor)
  MessagePtr& operator=(const MessagePtr& o) {
    MessagePtr tmp(o);
    std::swap(p_, tmp.p_);
    return *this;
  }
  MessagePtr& operator=(MessagePtr&& o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~MessagePtr() { reset(); }

  void reset() {
    if (p_ != nullptr) {
      unref_message(p_);
      p_ = nullptr;
    }
  }
  const Message* get() const { return p_; }
  const Message& operator*() const { return *p_; }
  const Message* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const MessagePtr& a, std::nullptr_t) { return a.p_ == nullptr; }

 private:
  const Message* p_ = nullptr;
};

/// Move-only typed handle used while building a message (mutable access);
/// converts into a MessagePtr for sending.
template <class T>
class PooledPtr {
 public:
  PooledPtr() = default;
  explicit PooledPtr(T* p) : p_(p) {}
  PooledPtr(const PooledPtr&) = delete;
  PooledPtr& operator=(const PooledPtr&) = delete;
  PooledPtr(PooledPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PooledPtr& operator=(PooledPtr&& o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~PooledPtr() { reset(); }

  void reset() {
    if (p_ != nullptr) {
      unref_message(p_);
      p_ = nullptr;
    }
  }
  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  friend class MessagePtr;
  T* p_ = nullptr;
};

template <class T>
MessagePtr::MessagePtr(PooledPtr<T>&& o) noexcept : p_(o.p_) {
  o.p_ = nullptr;  // reference transferred, no rc change
}

/// Per-MsgType free lists of message objects. acquire() hands out a reset
/// message whose vectors/strings keep their previously grown capacity, so a
/// warmed-up pool serves the whole protocol without heap traffic. Outstanding
/// messages keep a dying pool safe: the destructor detaches them and they
/// self-delete on their last unref.
class MessagePool {
 public:
  struct Stats {
    std::uint64_t allocated = 0;  ///< messages created with new
    std::uint64_t reused = 0;     ///< messages served from a free list
  };

  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;
  ~MessagePool() {
    for (Message* m : all_) {
      if (m->rc_ == 0) {
        delete m;
      } else {
        m->pool_ = nullptr;  // still in flight: self-deletes on last unref
      }
    }
  }

  template <class T>
  PooledPtr<T> make() {
    auto& fl = free_[static_cast<int>(T::kType)];
    T* m;
    if (fl.empty()) {
      m = new T();
      m->pool_ = this;
      all_.push_back(m);
      ++stats_.allocated;
    } else {
      m = static_cast<T*>(fl.back());
      fl.pop_back();
      ++stats_.reused;
    }
    m->rc_ = 1;
    return PooledPtr<T>(m);
  }

  const Stats& stats() const { return stats_; }
  std::size_t live_messages() const { return all_.size(); }

 private:
  friend void unref_message(const Message* m);
  void release(Message* m) {
    m->reset_payload();
    free_[static_cast<int>(m->type())].push_back(m);
  }

  std::array<std::vector<Message*>, kNumMsgTypes> free_;
  std::vector<Message*> all_;  ///< every message ever allocated by this pool
  Stats stats_;
};

inline void unref_message(const Message* m) {
  if (--m->rc_ == 0) {
    Message* mm = const_cast<Message*>(m);
    if (mm->pool_ != nullptr) {
      mm->pool_->release(mm);
    } else {
      delete mm;
    }
  }
}

/// Builds an unpooled message (tests, tools): deleted on last unref.
template <class T>
PooledPtr<T> make_message() {
  T* m = new T();
  m->rc_ = 1;
  return PooledPtr<T>(m);
}

/// Encodes [type tag][payload] into out.
void encode_message(const Message& m, std::vector<std::uint8_t>& out);

/// Decodes a message previously produced by encode_message.
std::unique_ptr<Message> decode_message(Decoder& d);

/// Decodes into a message acquired from `pool` (field vectors keep their
/// grown capacity), so a warmed-up receive path decodes without heap
/// traffic. Used by the thread runtime, whose transport serializes every
/// message between per-worker pools.
MessagePtr decode_message_pooled(Decoder& d, MessagePool& pool);

// ---------------------------------------------------------------------------
// Field visitors.
// ---------------------------------------------------------------------------

namespace detail {

/// Signed integers go on the wire zigzag-encoded (small magnitudes of either
/// sign stay short).
constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

struct WireWriter {
  Encoder& e;
  /// WriteKV/Item carry their binary counter payload (`num`) behind a
  /// presence bit folded into an existing byte (WriteKV's kind flags,
  /// Item's shifted source-DC), so register traffic — where num is always
  /// 0 — pays zero varint overhead for the field.
  void operator()(const WriteKV& w) {
    (*this)(w.k);
    (*this)(w.v);
    const bool has_num = w.num != 0;
    e.put_u8(static_cast<std::uint8_t>((w.kind & 1u) | (has_num ? 2u : 0u)));
    if (has_num) e.put_varint(zigzag(w.num));
  }
  void operator()(const Item& it) {
    (*this)(it.k);
    (*this)(it.v);
    (*this)(it.ut);
    (*this)(it.tx);
    const bool has_num = it.num != 0;
    e.put_varint((static_cast<std::uint64_t>(it.sr) << 1) | (has_num ? 1u : 0u));
    if (has_num) e.put_varint(zigzag(it.num));
  }
  void operator()(std::uint8_t v) { e.put_u8(v); }
  void operator()(std::uint64_t v) { e.put_varint(v); }
  void operator()(std::uint32_t v) { e.put_varint(v); }
  void operator()(std::uint16_t v) { e.put_varint(v); }
  void operator()(std::int64_t v) { e.put_varint(zigzag(v)); }
  void operator()(const std::string& v) { e.put_bytes(v); }
  void operator()(Timestamp v) { e.put_varint(v.raw); }
  void operator()(TxId v) { e.put_varint(v.raw); }
  // Byte blobs (nested encoded messages) go through the bulk path, not the
  // per-element template below.
  void operator()(const std::vector<std::uint8_t>& v) { e.put_blob(v); }
  template <class T>
  void operator()(const std::vector<T>& v) {
    e.put_varint(v.size());
    for (const auto& x : v) (*this)(x);
  }
  template <class T>
  void operator()(const RecyclingVec<T>& v) {
    e.put_varint(v.size());
    for (const auto& x : v) (*this)(x);
  }
  template <class T>
    requires requires(const T& t, WireWriter& w) { T::fields(t, w); }
  void operator()(const T& v) {
    T::fields(v, *this);
  }
};

struct WireReader {
  Decoder& d;
  void operator()(WriteKV& w) {
    (*this)(w.k);
    (*this)(w.v);
    const std::uint8_t flags = d.get_u8();
    w.kind = flags & 1u;
    w.num = (flags & 2u) ? unzigzag(d.get_varint()) : 0;
  }
  void operator()(Item& it) {
    (*this)(it.k);
    (*this)(it.v);
    (*this)(it.ut);
    (*this)(it.tx);
    const std::uint64_t sr_flags = d.get_varint();
    it.sr = static_cast<DcId>(sr_flags >> 1);
    it.num = (sr_flags & 1u) ? unzigzag(d.get_varint()) : 0;
  }
  void operator()(std::uint8_t& v) { v = d.get_u8(); }
  void operator()(std::uint64_t& v) { v = d.get_varint(); }
  void operator()(std::uint32_t& v) { v = static_cast<std::uint32_t>(d.get_varint()); }
  void operator()(std::uint16_t& v) { v = static_cast<std::uint16_t>(d.get_varint()); }
  void operator()(std::int64_t& v) { v = unzigzag(d.get_varint()); }
  void operator()(std::string& v) { d.get_bytes_into(v); }
  void operator()(Timestamp& v) { v.raw = d.get_varint(); }
  void operator()(TxId& v) { v.raw = d.get_varint(); }
  void operator()(std::vector<std::uint8_t>& v) { d.get_blob_into(v); }
  template <class T>
  void operator()(std::vector<T>& v) {
    v.resize(d.get_varint());
    for (auto& x : v) (*this)(x);
  }
  // Recycled elements come back in their previous state; every field is
  // overwritten by the per-element read below, so no stale data survives.
  template <class T>
  void operator()(RecyclingVec<T>& v) {
    v.resize(d.get_varint());
    for (auto& x : v) (*this)(x);
  }
  template <class T>
    requires requires(T& t, WireReader& r) { T::fields(t, r); }
  void operator()(T& v) {
    T::fields(v, *this);
  }
};

struct WireSizer {
  std::size_t n = 0;
  void operator()(const WriteKV& w) {
    (*this)(w.k);
    (*this)(w.v);
    n += 1;  // kind/presence flags
    if (w.num != 0) n += varint_size(zigzag(w.num));
  }
  void operator()(const Item& it) {
    (*this)(it.k);
    (*this)(it.v);
    (*this)(it.ut);
    (*this)(it.tx);
    n += varint_size((static_cast<std::uint64_t>(it.sr) << 1) | (it.num != 0 ? 1u : 0u));
    if (it.num != 0) n += varint_size(zigzag(it.num));
  }
  void operator()(std::uint8_t) { n += 1; }
  void operator()(std::uint64_t v) { n += varint_size(v); }
  void operator()(std::uint32_t v) { n += varint_size(v); }
  void operator()(std::uint16_t v) { n += varint_size(v); }
  void operator()(std::int64_t v) { n += varint_size(zigzag(v)); }
  void operator()(const std::string& v) { n += varint_size(v.size()) + v.size(); }
  void operator()(Timestamp v) { n += varint_size(v.raw); }
  void operator()(TxId v) { n += varint_size(v.raw); }
  void operator()(const std::vector<std::uint8_t>& v) {
    n += varint_size(v.size()) + v.size();
  }
  template <class T>
  void operator()(const std::vector<T>& v) {
    n += varint_size(v.size());
    for (const auto& x : v) (*this)(x);
  }
  template <class T>
  void operator()(const RecyclingVec<T>& v) {
    n += varint_size(v.size());
    for (const auto& x : v) (*this)(x);
  }
  template <class T>
    requires requires(const T& t, WireSizer& s) { T::fields(t, s); }
  void operator()(const T& v) {
    T::fields(v, *this);
  }
};

/// Resets every field to its default value, keeping container capacity
/// (clear(), not shrink) — the pool's in-place reuse hook.
struct FieldClearer {
  void operator()(std::uint8_t& v) { v = 0; }
  void operator()(std::uint64_t& v) { v = 0; }
  void operator()(std::uint32_t& v) { v = 0; }
  void operator()(std::uint16_t& v) { v = 0; }
  void operator()(std::int64_t& v) { v = 0; }
  void operator()(std::string& v) { v.clear(); }
  void operator()(Timestamp& v) { v = Timestamp{}; }
  void operator()(TxId& v) { v = TxId{}; }
  template <class T>
  void operator()(std::vector<T>& v) {
    v.clear();
  }
  // RecyclingVec::clear keeps the elements alive, so a pooled message's
  // nested buffers (inner vectors, value strings) survive the reset.
  template <class T>
  void operator()(RecyclingVec<T>& v) {
    v.clear();
  }
  template <class T>
    requires requires(T& t, FieldClearer& c) { T::fields(t, c); }
  void operator()(T& v) {
    T::fields(v, *this);
  }
};

}  // namespace detail

/// CRTP base deriving the Message interface from Derived::fields.
template <class Derived, MsgType Type>
struct MessageBase : Message {
  static constexpr MsgType kType = Type;
  MsgType type() const final { return Type; }
  void encode(Encoder& e) const final {
    detail::WireWriter w{e};
    Derived::fields(static_cast<const Derived&>(*this), w);
  }
  std::size_t wire_size() const final {
    detail::WireSizer s;
    Derived::fields(static_cast<const Derived&>(*this), s);
    return s.n;
  }
  void reset_payload() final {
    detail::FieldClearer c;
    Derived::fields(static_cast<Derived&>(*this), c);
  }
  static std::unique_ptr<Message> decode(Decoder& d) {
    auto m = std::make_unique<Derived>();
    detail::WireReader r{d};
    Derived::fields(*m, r);
    return m;
  }
};

// ---------------------------------------------------------------------------
// Client <-> coordinator messages (Alg. 1 / Alg. 2).
// ---------------------------------------------------------------------------

/// START-TX: carries the client's last observed stable snapshot ust_c.
struct ClientStartReq : MessageBase<ClientStartReq, MsgType::kClientStartReq> {
  Timestamp ust_c;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.ust_c);
  }
};

/// Reply: transaction id + assigned snapshot.
struct ClientStartResp : MessageBase<ClientStartResp, MsgType::kClientStartResp> {
  TxId tx;
  Timestamp snapshot;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.snapshot);
  }
};

/// READ: the keys the client could not serve from WS/RS/cache.
struct ClientReadReq : MessageBase<ClientReadReq, MsgType::kClientReadReq> {
  TxId tx;
  std::uint8_t mode = 0;  ///< ReadMode
  std::vector<Key> keys;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.mode);
    f(s.keys);
  }
};

struct ClientReadResp : MessageBase<ClientReadResp, MsgType::kClientReadResp> {
  TxId tx;
  std::vector<Item> items;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.items);
  }
};

/// COMMIT-TX: write set + the client's last update-commit time hwt_c.
struct ClientCommitReq : MessageBase<ClientCommitReq, MsgType::kClientCommitReq> {
  TxId tx;
  Timestamp hwt;
  std::vector<WriteKV> writes;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.hwt);
    f(s.writes);
  }
};

struct ClientCommitResp : MessageBase<ClientCommitResp, MsgType::kClientCommitResp> {
  TxId tx;
  Timestamp ct;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.ct);
  }
};

/// Read-only transactions end without a 2PC; this clears the coordinator's
/// transaction context (the paper GCs contexts on a timeout; an explicit end
/// message is equivalent and keeps the simulation memory bounded).
struct TxEnd : MessageBase<TxEnd, MsgType::kTxEnd> {
  TxId tx;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
  }
};

// ---------------------------------------------------------------------------
// Coordinator <-> cohort messages (Alg. 2 / Alg. 3).
// ---------------------------------------------------------------------------

struct ReadSliceReq : MessageBase<ReadSliceReq, MsgType::kReadSliceReq> {
  TxId tx;
  Timestamp snapshot;
  std::uint8_t mode = 0;  ///< ReadMode
  std::vector<Key> keys;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.snapshot);
    f(s.mode);
    f(s.keys);
  }
};

struct ReadSliceResp : MessageBase<ReadSliceResp, MsgType::kReadSliceResp> {
  TxId tx;
  std::vector<Item> items;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.items);
  }
};

struct PrepareReq : MessageBase<PrepareReq, MsgType::kPrepareReq> {
  TxId tx;
  PartitionId partition = 0;
  Timestamp snapshot;  ///< transaction snapshot (ust at start)
  Timestamp ht;        ///< max(snapshot, client hwt), Alg. 2 line 19
  std::vector<WriteKV> writes;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.partition);
    f(s.snapshot);
    f(s.ht);
    f(s.writes);
  }
};

struct PrepareResp : MessageBase<PrepareResp, MsgType::kPrepareResp> {
  TxId tx;
  PartitionId partition = 0;
  Timestamp pt;  ///< proposed commit timestamp
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.partition);
    f(s.pt);
  }
};

struct Commit2pc : MessageBase<Commit2pc, MsgType::kCommit2pc> {
  TxId tx;
  Timestamp ct;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.tx);
    f(s.ct);
  }
};

// ---------------------------------------------------------------------------
// Replication & stabilization (Alg. 4).
// ---------------------------------------------------------------------------

/// Batch of applied transactions shipped to peer replicas of a partition,
/// grouped by commit timestamp, in increasing ct order. `upto` is the
/// sender's version-clock upper bound (a merged heartbeat): the sender
/// guarantees every future ct from it exceeds `upto`.
struct ReplicateBatch : MessageBase<ReplicateBatch, MsgType::kReplicateBatch> {
  PartitionId partition = 0;
  Timestamp upto;
  RecyclingVec<ReplicateGroup> groups;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.partition);
    f(s.upto);
    f(s.groups);
  }
};

/// Version-clock advance in the absence of updates (Alg. 4 line 21).
struct Heartbeat : MessageBase<Heartbeat, MsgType::kHeartbeat> {
  PartitionId partition = 0;
  Timestamp t;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.partition);
    f(s.t);
  }
};

/// Intra-DC stabilization tree, child -> parent: the subtree's minimum
/// version-vector entry and oldest active snapshot (for GC, §IV-B).
struct GossipUp : MessageBase<GossipUp, MsgType::kGossipUp> {
  Timestamp min_vv;
  Timestamp oldest_active;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.min_vv);
    f(s.oldest_active);
  }
};

/// Root -> remote roots: this DC's global stable time (GST).
struct GossipRoot : MessageBase<GossipRoot, MsgType::kGossipRoot> {
  DcId dc = 0;
  Timestamp gst;
  Timestamp oldest_active;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.dc);
    f(s.gst);
    f(s.oldest_active);
  }
};

/// Root -> subtree: the universal stable time and GC watermark.
struct UstDown : MessageBase<UstDown, MsgType::kUstDown> {
  Timestamp ust;
  Timestamp gc_watermark;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.ust);
    f(s.gc_watermark);
  }
};

// ---------------------------------------------------------------------------
// Reliable-delivery framing (runtime::ReliableTransport, DESIGN.md §9).
// ---------------------------------------------------------------------------

/// At-least-once data frame: a protocol message encoded as an opaque blob,
/// tagged with a per-channel sequence number. `inner_type` duplicates
/// payload[0] so fault-injection decorators can classify the carried message
/// without decoding the blob. An EMPTY payload is a placeholder: the frame
/// only advances the receiver's sequence (used when a superseded latest-wins
/// message was coalesced out of the retransmission window).
///
/// `dst_epoch` is the sender's view of the RECEIVER's process incarnation
/// (always 0 on the thread backend). A receiver drops frames stamped with a
/// different epoch: after a rank is killed and respawned, retransmissions
/// still numbered for the dead incarnation's channel would otherwise land in
/// the fresh receiver's reorder buffer and later mask a renumbered frame
/// with the same seq — an acked-but-never-delivered message.
struct ReliableFrame : MessageBase<ReliableFrame, MsgType::kReliableFrame> {
  std::uint64_t seq = 0;           ///< 1-based, contiguous per (from, to)
  std::uint32_t dst_epoch = 0;     ///< receiver incarnation this seq belongs to
  std::uint8_t inner_type = 0;     ///< MsgType of the carried message
  std::vector<std::uint8_t> payload;  ///< encode_message() bytes; empty = placeholder
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.seq);
    f(s.dst_epoch);
    f(s.inner_type);
    f(s.payload);
  }
};

/// Cumulative acknowledgement: every frame with seq <= cum_seq was delivered
/// in order. Acks are idempotent and unsequenced; losing or duplicating one
/// is harmless (retransmission re-elicits it, stale ones are ignored).
///
/// `sack` carries selective-acknowledgement ranges: flat [lo1,hi1,lo2,hi2,…]
/// pairs of seqs the receiver holds BEYOND the cumulative ack (buffered past
/// a gap). Ranges must be well-formed — even count, lo <= hi, first lo >
/// cum_seq + 1, ascending and non-adjacent — or the sender ignores them all
/// (acks cross process boundaries, so malformed input is a peer bug to
/// survive, not a codec bug to assert on). Senders use the ranges to
/// retransmit only the gaps instead of the whole in-flight window.
struct ReliableAck : MessageBase<ReliableAck, MsgType::kReliableAck> {
  std::uint64_t cum_seq = 0;
  std::vector<std::uint64_t> sack;  ///< [lo,hi] pairs, flattened
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.cum_seq);
    f(s.sack);
  }
};

// ---------------------------------------------------------------------------
// Crash recovery: snapshot + catch-up state transfer (DESIGN.md §11).
// ---------------------------------------------------------------------------

/// Respawned replica -> donor replica: stream me the full state of
/// `partition`. `epoch` names the requester's incarnation (diagnostics; the
/// socket layer already fences stale incarnations).
struct SnapshotRequest : MessageBase<SnapshotRequest, MsgType::kSnapshotRequest> {
  PartitionId partition = 0;
  std::uint32_t epoch = 0;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.partition);
    f(s.epoch);
  }
};

/// Donor -> requester: one slice of the snapshot stream, in `seq` order over
/// a FIFO reliable channel. The chunks are arbitrary splits of one snapshot
/// blob — header (HLC, version vector, protocol extras) followed by a
/// version-record list — which the requester reassembles and installs when
/// `last` closes the stream.
struct SnapshotChunk : MessageBase<SnapshotChunk, MsgType::kSnapshotChunk> {
  PartitionId partition = 0;
  std::uint32_t seq = 0;
  std::uint8_t last = 0;
  std::vector<std::uint8_t> payload;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.partition);
    f(s.seq);
    f(s.last);
    f(s.payload);
  }
};

/// Anti-entropy delta request: send me every version of `partition` newer
/// than my per-replica applied watermarks (`vv`, raw timestamps in replica
/// slot order). Sent by a recovered replica to its non-donor peers, and by
/// survivors to a reincarnated peer to recover anything only the dead
/// incarnation had applied.
struct CatchUpRequest : MessageBase<CatchUpRequest, MsgType::kCatchUpRequest> {
  PartitionId partition = 0;
  std::uint32_t epoch = 0;
  std::vector<std::uint64_t> vv;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.partition);
    f(s.epoch);
    f(s.vv);
  }
};

/// Delta reply: a self-contained version-record list per chunk (records are
/// idempotent to apply, so chunk order does not matter); the `last` chunk
/// also carries the sender's version vector so the requester can advance its
/// own watermarks past heartbeat-only progress.
struct CatchUpChunk : MessageBase<CatchUpChunk, MsgType::kCatchUpChunk> {
  PartitionId partition = 0;
  std::uint8_t last = 0;
  std::vector<std::uint8_t> payload;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.partition);
    f(s.last);
    f(s.payload);
  }
};

// ---------------------------------------------------------------------------
// Workload-aware placement: sketch reporting + online hot-key migration
// (DESIGN.md §14). All placement traffic is FIFO per channel and, like the
// recovery messages, charged zero cost by the simulator's CPU model.
// ---------------------------------------------------------------------------

/// One entry of a server's Space-Saving access sketch.
struct SketchEntry {
  Key k = 0;
  std::uint64_t count = 0;
  std::uint32_t dc_mask = 0;  ///< bit d set => DC d accessed the key
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.k);
    f(s.count);
    f(s.dc_mask);
  }
  friend bool operator==(const SketchEntry&, const SketchEntry&) = default;
};

/// Server -> placement controller: periodic top-K slice of the local access
/// sketch (then reset, so counts are per-period deltas the controller sums).
struct SketchReport : MessageBase<SketchReport, MsgType::kSketchReport> {
  DcId dc = 0;
  PartitionId partition = 0;
  std::vector<SketchEntry> entries;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.dc);
    f(s.partition);
    f(s.entries);
  }
};

/// Controller -> every server: fence `key` for move `move_id`. Servers park
/// new client transactions touching the key and tell every src replica they
/// have stopped routing to it (MigrateFlush).
struct MigrateFence : MessageBase<MigrateFence, MsgType::kMigrateFence> {
  std::uint64_t move_id = 0;
  Key key = 0;
  PartitionId src = 0;
  PartitionId dst = 0;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.move_id);
    f(s.key);
    f(s.src);
    f(s.dst);
  }
};

/// Any server -> src-partition replicas: "I fenced `key`; no new 2PC traffic
/// for it will arrive from me". FIFO behind that server's in-flight sends.
struct MigrateFlush : MessageBase<MigrateFlush, MsgType::kMigrateFlush> {
  std::uint64_t move_id = 0;
  Key key = 0;
  DcId from_dc = 0;
  PartitionId from_partition = 0;
  /// Sender's HLC at fence time. Any snapshot a coordinator handed out
  /// before it stopped routing to the key is bounded by the max of these
  /// floors; the dst replicas tick past it so post-cutover writes can never
  /// commit inside an already-stable snapshot (see maybe_ship_chain).
  Timestamp floor;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.move_id);
    f(s.key);
    f(s.from_dc);
    f(s.from_partition);
    f(s.floor);
  }
};

/// Src replica -> every dst replica: the key's full version chain (an
/// encode_version_record list, same format as recovery state transfer),
/// shipped after the src replica drained its in-flight 2PC state for the key.
struct MigrateChain : MessageBase<MigrateChain, MsgType::kMigrateChain> {
  std::uint64_t move_id = 0;
  Key key = 0;
  DcId src_dc = 0;
  /// max(accumulated flush floors, src HLC at ship time): an upper bound on
  /// every snapshot stabilized — and every src version committed — before
  /// cutover. Dst ticks its HLC strictly past this before reporting ready.
  Timestamp floor;
  std::vector<std::uint8_t> payload;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.move_id);
    f(s.key);
    f(s.src_dc);
    f(s.floor);
    f(s.payload);
  }
};

/// Dst replica -> controller: all src-replica chains for `move_id` installed.
struct MigrateReady : MessageBase<MigrateReady, MsgType::kMigrateReady> {
  std::uint64_t move_id = 0;
  DcId dc = 0;
  PartitionId partition = 0;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.move_id);
    f(s.dc);
    f(s.partition);
  }
};

/// Controller -> every server: flip routing of `key` to `dst`, unfence, and
/// replay the transactions parked behind the fence.
struct MigrateCommit : MessageBase<MigrateCommit, MsgType::kMigrateCommit> {
  std::uint64_t move_id = 0;
  Key key = 0;
  PartitionId src = 0;
  PartitionId dst = 0;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.move_id);
    f(s.key);
    f(s.src);
    f(s.dst);
  }
};

/// Server -> controller: commit applied; the controller starts the next move
/// once every server acked (moves are sequential, one key in flight).
struct MigrateCommitAck : MessageBase<MigrateCommitAck, MsgType::kMigrateCommitAck> {
  std::uint64_t move_id = 0;
  DcId dc = 0;
  PartitionId partition = 0;
  template <class S, class F>
  static void fields(S& s, F&& f) {
    f(s.move_id);
    f(s.dc);
    f(s.partition);
  }
};

/// Byte-level validation of an encode_message() buffer WITHOUT the strict
/// decoder's abort-on-malformed contract: returns false on unknown type,
/// truncation, overlong varints, oversized counts or trailing garbage, and
/// never allocates proportionally to attacker-controlled counts. The socket
/// runtime runs this on every inbound frame — bytes that crossed a process
/// boundary are a trust boundary, not a codec invariant — and drops (counts)
/// failures; only validated bytes reach decode_message_pooled. ReliableFrame
/// payloads are validated recursively so a corrupt nested message cannot
/// abort the receiving worker either.
bool validate_encoded_message(const std::uint8_t* data, std::size_t len);

/// X-macro over every concrete message type (used by the codec registry and
/// by tests that fuzz the codec).
#define PARIS_FOREACH_MESSAGE(X) \
  X(ClientStartReq)              \
  X(ClientStartResp)             \
  X(ClientReadReq)               \
  X(ClientReadResp)              \
  X(ClientCommitReq)             \
  X(ClientCommitResp)            \
  X(TxEnd)                       \
  X(ReadSliceReq)                \
  X(ReadSliceResp)               \
  X(PrepareReq)                  \
  X(PrepareResp)                 \
  X(Commit2pc)                   \
  X(ReplicateBatch)              \
  X(Heartbeat)                   \
  X(GossipUp)                    \
  X(GossipRoot)                  \
  X(UstDown)                     \
  X(ReliableFrame)               \
  X(ReliableAck)                 \
  X(SnapshotRequest)             \
  X(SnapshotChunk)               \
  X(CatchUpRequest)              \
  X(CatchUpChunk)                \
  X(SketchReport)                \
  X(MigrateFence)                \
  X(MigrateFlush)                \
  X(MigrateChain)                \
  X(MigrateReady)                \
  X(MigrateCommit)               \
  X(MigrateCommitAck)

}  // namespace paris::wire
