// buffer.h is header-only; this TU exists so the wire library has a stable
// archive even if messages.cc is ever split out.
#include "wire/buffer.h"
