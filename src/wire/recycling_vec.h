#pragma once
// RecyclingVec: a vector whose clear() keeps its elements ALIVE — the live
// size drops to zero but no destructors run, so nested buffers (a
// ReplicateTxn's writes vector, a value string) keep their grown capacity
// and the element is rebuilt in place on the next use.
//
// std::vector cannot provide this: clear()/resize() destroy elements, which
// frees every nested buffer. That made the nested ReplicateBatch decode the
// one remaining allocating path of the thread runtime's receive loop (a
// pooled ReplicateBatch kept the outer groups capacity, but each reuse
// reconstructed the groups' inner vectors from scratch — see ROADMAP).
//
// Contract: recycled elements are returned in their PREVIOUS state; the
// caller (the wire decoder, the replicate-batch builder) overwrites every
// field it reads back. Only the live prefix [0, size()) is observable
// through iteration, comparison and copying.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace paris::wire {

template <class T>
class RecyclingVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  RecyclingVec() = default;
  RecyclingVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  // Copies transfer only the live prefix (the recycled tail is a local
  // capacity optimization, not part of the value).
  RecyclingVec(const RecyclingVec& o) : store_(o.begin(), o.end()), size_(o.size_) {}
  RecyclingVec& operator=(const RecyclingVec& o) {
    if (this != &o) {
      resize(o.size_);
      std::copy(o.begin(), o.end(), begin());
    }
    return *this;
  }
  RecyclingVec(RecyclingVec&&) noexcept = default;
  RecyclingVec& operator=(RecyclingVec&&) noexcept = default;

  /// Drops the live size to zero WITHOUT destroying elements: their nested
  /// buffers stay warm for the next fill. This is the whole point.
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Sets the live size. Growing revives recycled elements (or
  /// default-constructs new ones past the high-water mark); shrinking keeps
  /// the tail alive. Element state is whatever it last was — callers
  /// overwrite what they use.
  void resize(std::size_t n) {
    if (n > store_.size()) store_.resize(n);
    size_ = n;
  }

  /// Appends a live element: recycled if available, default-constructed
  /// otherwise. Returned in its previous state (see resize()).
  T& emplace_back() {
    if (size_ == store_.size()) store_.emplace_back();
    return store_[size_++];
  }
  void push_back(const T& v) { emplace_back() = v; }
  void push_back(T&& v) { emplace_back() = std::move(v); }

  /// Element-wise copy into recycled slots (each element's own buffers —
  /// e.g. string capacity — survive the assignment).
  template <class It>
  void assign(It first, It last) {
    resize(static_cast<std::size_t>(std::distance(first, last)));
    std::copy(first, last, begin());
  }

  T& operator[](std::size_t i) {
    PARIS_DCHECK(i < size_);
    return store_[i];
  }
  const T& operator[](std::size_t i) const {
    PARIS_DCHECK(i < size_);
    return store_[i];
  }
  T& back() {
    PARIS_DCHECK(size_ > 0);
    return store_[size_ - 1];
  }
  const T& back() const {
    PARIS_DCHECK(size_ > 0);
    return store_[size_ - 1];
  }

  iterator begin() { return store_.data(); }
  iterator end() { return store_.data() + size_; }
  const_iterator begin() const { return store_.data(); }
  const_iterator end() const { return store_.data() + size_; }

  friend bool operator==(const RecyclingVec& a, const RecyclingVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::vector<T> store_;  ///< constructed elements; [size_, store_.size()) recycled
  std::size_t size_ = 0;  ///< live prefix
};

}  // namespace paris::wire
