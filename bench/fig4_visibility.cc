// Figure 4: CDF of update visibility latency, PaRiS vs. BPR, default
// workload on 5 DCs. Visibility latency of update X in DC_i = wall-clock
// time X becomes readable in DC_i minus wall-clock commit time in its
// origin DC. In PaRiS a version becomes readable when the server's UST
// passes its commit timestamp; in BPR when the version is applied.
// Paper result: BPR is much fresher; worst-case gap ~200 ms.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

namespace {

workload::ExperimentResult run_one(System sys) {
  auto cfg = default_config(sys);
  cfg.threads_per_process = fast_mode() ? 16 : 32;
  cfg.measure_visibility = true;
  cfg.visibility_sample_shift = 4;  // sample 1/16 of transactions
  return run_experiment(cfg);
}

void print_cdf(const char* name, const stats::Histogram& h) {
  std::printf("\n%s visibility latency (n=%llu samples: every replica of every "
              "sampled update)\n",
              name, static_cast<unsigned long long>(h.count()));
  std::printf("%-8s %12s\n", "pct", "ms");
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    std::printf("p%-7.1f %12.2f\n", q * 100, h.percentile(q) / 1000.0);
  }
  std::printf("mean     %12.2f\nmax      %12.2f\n", h.mean() / 1000.0, h.max() / 1000.0);
}

}  // namespace

int main() {
  print_title("Figure 4: CDF of update visibility latency",
              "default workload, 5 DCs, 45 partitions, R=2");

  const auto paris_res = run_one(System::kParis);
  const auto bpr_res = run_one(System::kBpr);

  print_cdf("PaRiS", paris_res.visibility_hist);
  print_cdf("BPR", bpr_res.visibility_hist);

  std::printf("\nCDF series (cumulative fraction at ms; plot-ready):\n");
  std::printf("%-10s %-12s %s\n", "system", "ms", "cum_frac");
  for (const auto& [v, f] : paris_res.visibility_hist.cdf())
    if (f >= 0.01) std::printf("%-10s %-12.2f %.4f\n", "PaRiS", v / 1000.0, f);
  for (const auto& [v, f] : bpr_res.visibility_hist.cdf())
    if (f >= 0.01) std::printf("%-10s %-12.2f %.4f\n", "BPR", v / 1000.0, f);

  std::printf("\nMedian gap (PaRiS - BPR): %.2f ms (paper: PaRiS visibly staler, "
              "up to ~200 ms at the tail)\n",
              (paris_res.visibility_hist.percentile(0.5) -
               bpr_res.visibility_hist.percentile(0.5)) /
                  1000.0);
  return 0;
}
