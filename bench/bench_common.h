#pragma once
// Shared plumbing for the figure benchmarks: paper-default configurations,
// thread sweeps and table printing. Every bench binary prints the series of
// one figure/table of the paper (DESIGN.md §5 maps ids to binaries).
//
// Environment knobs:
//   PARIS_BENCH_FAST=1    quarter-length runs (CI smoke)
//   PARIS_BENCH_SEED=<n>  override the default seed

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "stats/summary.h"
#include "workload/experiment.h"

namespace paris::bench {

using proto::System;
using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::WorkloadSpec;

inline bool fast_mode() {
  const char* v = std::getenv("PARIS_BENCH_FAST");
  return v != nullptr && *v != '0';
}

inline std::uint64_t bench_seed() {
  const char* v = std::getenv("PARIS_BENCH_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 42;
}

/// How the driver issued load for a row: "open" (Poisson arrivals from a
/// schedule, latency charged from the scheduled instant) or "closed" (each
/// session waits for its previous transaction). The two modes measure
/// different things — closed-loop p99 hides queueing that open-loop intended
/// latency charges in full — so every realtime bench row records its mode
/// and tools/bench_guard.py refuses to compare rows whose modes differ.
inline const char* loop_mode(const ExperimentConfig& cfg) {
  return cfg.openloop.enabled ? "open" : "closed";
}

/// The paper's default deployment (§V-A): 5 DCs (Virginia, Oregon, Ireland,
/// Mumbai, Sydney), 45 partitions, replication factor 2 => 18 machines/DC,
/// 95:5 r:w, 95:5 local:multi, 4 partitions/tx, zipf 0.99.
inline ExperimentConfig default_config(System sys,
                                       WorkloadSpec wl = WorkloadSpec::read_heavy()) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.num_dcs = 5;
  cfg.num_partitions = 45;
  cfg.replication = 2;
  cfg.workload = wl;
  cfg.seed = bench_seed();
  cfg.warmup_us = fast_mode() ? 150'000 : 250'000;
  cfg.measure_us = fast_mode() ? 300'000 : 500'000;
  cfg.codec = sim::CodecMode::kSizeOnly;
  return cfg;
}

inline void print_title(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

inline void print_curve_header() {
  std::printf("%-8s %10s %12s %10s %10s %10s %10s\n", "threads", "ktx/s", "mean_ms",
              "p50_ms", "p95_ms", "p99_ms", "wall_s");
}

inline void print_curve_row(std::uint32_t threads, const ExperimentResult& r) {
  std::printf("%-8u %10.1f %12.2f %10.2f %10.2f %10.2f %10.1f\n", threads,
              r.throughput_tx_s / 1000.0, r.latency_us.mean / 1000.0,
              r.latency_us.p50 / 1000.0, r.latency_us.p95 / 1000.0,
              r.latency_us.p99 / 1000.0, r.wall_seconds);
}

struct CurvePoint {
  std::uint32_t threads;
  ExperimentResult result;
};

/// Runs a load sweep (each point = one simulated cluster run with a
/// different number of client threads per process) and prints the curve.
inline std::vector<CurvePoint> run_curve(ExperimentConfig cfg,
                                         const std::vector<std::uint32_t>& thread_counts) {
  std::vector<CurvePoint> out;
  print_curve_header();
  for (std::uint32_t t : thread_counts) {
    cfg.threads_per_process = t;
    CurvePoint p{t, workload::run_experiment(cfg)};
    print_curve_row(t, p.result);
    std::fflush(stdout);
    out.push_back(std::move(p));
  }
  return out;
}

/// Peak throughput point of a curve.
inline const CurvePoint& peak(const std::vector<CurvePoint>& curve) {
  const CurvePoint* best = &curve.front();
  for (const auto& p : curve)
    if (p.result.throughput_tx_s > best->result.throughput_tx_s) best = &p;
  return *best;
}

}  // namespace paris::bench
