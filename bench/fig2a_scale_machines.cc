// Figure 2a: PaRiS throughput when varying machines per DC (6, 12, 18) for
// 3-DC and 5-DC deployments. Machines/DC = N*R/M with one partition replica
// per machine, so the partition count scales with the cluster.
// Paper result: ~3x throughput going 6 -> 18 machines/DC, for both DC counts.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

int main() {
  print_title("Figure 2a: throughput vs machines per DC",
              "default workload (95:5 r:w, 95:5 local:multi), R=2, saturating load");

  const std::uint32_t threads = fast_mode() ? 64 : 128;
  std::printf("%-8s %-10s %12s %12s %10s\n", "DCs", "mach/DC", "partitions", "ktx/s",
              "scale");

  for (std::uint32_t dcs : {3u, 5u}) {
    double base = 0;
    for (std::uint32_t mpd : {6u, 12u, 18u}) {
      auto cfg = default_config(System::kParis);
      cfg.num_dcs = dcs;
      cfg.num_partitions = dcs * mpd / cfg.replication;
      cfg.threads_per_process = threads;
      const auto res = run_experiment(cfg);
      if (base == 0) base = res.throughput_tx_s;
      std::printf("%-8u %-10u %12u %12.1f %9.2fx\n", dcs, mpd, cfg.num_partitions,
                  res.throughput_tx_s / 1000.0, res.throughput_tx_s / base);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(paper: ideal 3x improvement scaling 6 -> 18 machines/DC)\n");
  return 0;
}
