// Micro-benchmarks for the hot substrate paths: the simulator event loop,
// network message flow, storage reads/writes, counter reads, wire
// encode/decode and HLC updates.
//
// Self-contained harness (no google-benchmark): every benchmark reports
// ops/sec, ns/op and — via a counting global operator new — heap
// allocations per op. Results are printed as a table and written as
// machine-readable JSON to BENCH_micro.json (override with PARIS_BENCH_OUT)
// so every perf PR can show a before/after curve.
//
// Environment knobs:
//   PARIS_BENCH_FAST=1   short runs (CI smoke)
//   PARIS_BENCH_OUT=path JSON output path

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/hlc.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "storage/mv_store.h"
#include "wire/messages.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: every global new/delete is counted, so benchmarks
// can report allocations/op and assert allocation-free steady state.
// ---------------------------------------------------------------------------

namespace {
// Relaxed atomics: the thread-runtime rows allocate (or must not) from
// worker threads; relaxed counting is exact enough for assertions of ZERO.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

// GCC warns that free() doesn't match the replaced operator new; the pairing
// here (malloc in new, free in delete) is the canonical replacement idiom.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace paris::bench {
namespace {

using Clock = std::chrono::steady_clock;

bool fast_mode() {
  const char* v = std::getenv("PARIS_BENCH_FAST");
  return v != nullptr && *v != '0';
}

struct Result {
  std::string name;
  double ops_per_sec = 0;
  double ns_per_op = 0;
  double allocs_per_op = 0;
  double events_per_sec = 0;  ///< only for simulator-loop benchmarks
};

std::vector<Result>& results() {
  static std::vector<Result> r;
  return r;
}

/// Runs `body(ops_per_batch)` in batches until `seconds` of wall time have
/// elapsed (after one untimed warmup batch), then records the result.
/// `body` returns the number of operations performed in the batch.
/// Throughput is the best of two measurement windows: interference (CI
/// runner neighbors, frequency scaling) only ever slows a run, so max is
/// the low-noise estimator — it keeps the bench regression guard's
/// tolerance meaningful for the few-ns/op rows. Allocations are counted
/// across both windows (a real alloc regression shows up regardless).
/// One timed window: runs body batches for `seconds`, returns ops/sec.
/// Kept out of line so the batch loop compiles identically no matter how
/// many windows run_bench takes.
template <class F>
__attribute__((noinline)) double measure_window(F& body, double seconds,
                                                std::uint64_t& total_ops) {
  std::uint64_t ops = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    ops += body();
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < seconds);
  total_ops += ops;
  return static_cast<double>(ops) / elapsed;
}

template <class F>
Result run_bench(const std::string& name, F&& body, double events_per_op = 0) {
  const double seconds = fast_mode() ? 0.05 : 0.4;
  (void)body();  // warmup: populate pools, grow vectors, fault pages
  std::uint64_t total_ops = 0;
  const std::uint64_t allocs_before = g_alloc_count;
  double best_ops_per_sec = 0;
  for (int rep = 0; rep < 2; ++rep)
    best_ops_per_sec = std::max(best_ops_per_sec, measure_window(body, seconds, total_ops));
  const std::uint64_t allocs = g_alloc_count - allocs_before;

  Result r;
  r.name = name;
  r.ops_per_sec = best_ops_per_sec;
  r.ns_per_op = 1e9 / best_ops_per_sec;
  r.allocs_per_op = static_cast<double>(allocs) / static_cast<double>(total_ops);
  r.events_per_sec = events_per_op * r.ops_per_sec;
  std::printf("%-32s %14.0f ops/s %10.1f ns/op %8.3f allocs/op\n", name.c_str(),
              r.ops_per_sec, r.ns_per_op, r.allocs_per_op);
  std::fflush(stdout);
  results().push_back(r);
  return r;
}

// ---------------------------------------------------------------------------
// Event queue: push/pop batches through the Simulation API.
// ---------------------------------------------------------------------------

void bench_event_queue() {
  sim::Simulation sim;
  Rng rng(3);
  std::uint64_t sink = 0;
  run_bench("event_queue_push_pop", [&] {
    const int kBatch = 1024;
    const sim::SimTime base = sim.now();
    for (int i = 0; i < kBatch; ++i)
      sim.at(base + rng.next_below(1000), [&sink] { ++sink; });
    while (sim.step()) {
    }
    return kBatch;
  });
  PARIS_CHECK(sink > 0);
}

// ---------------------------------------------------------------------------
// Simulator + network steady-state loop: actor pairs ping-ponging heartbeat
// messages through the full send/transmit/deliver/CPU-queue path. This is
// the closest proxy for "simulated events per second" of the real benches.
// ---------------------------------------------------------------------------

class PingActor : public sim::Actor {
 public:
  PingActor(sim::Network& net) : net_(&net) {}
  void attach(NodeId self, NodeId peer) {
    self_ = self;
    peer_ = peer;
  }
  void on_message(NodeId /*from*/, const wire::Message& m) override {
    ++received_;
    auto hb = net_->msg_pool().make<wire::Heartbeat>();
    hb->partition = 0;
    hb->t = static_cast<const wire::Heartbeat&>(m).t.next();
    net_->send(self_, peer_, std::move(hb));
  }
  std::uint64_t received() const { return received_; }

 private:
  sim::Network* net_;
  NodeId self_ = kInvalidNode;
  NodeId peer_ = kInvalidNode;
  std::uint64_t received_ = 0;
};

void bench_sim_loop() {
  sim::Simulation sim(7);
  auto lat = sim::LatencyModel::uniform(2, 1000, 100);
  lat.set_jitter(0.1);
  sim::Network net(sim, lat, sim::CodecMode::kSizeOnly);

  constexpr int kPairs = 8;
  std::vector<PingActor> actors(2 * kPairs, PingActor(net));
  for (int i = 0; i < kPairs; ++i) {
    const NodeId a = net.add_node(&actors[2 * i], 0);
    const NodeId b = net.add_node(&actors[2 * i + 1], 1);
    actors[2 * i].attach(a, b);
    actors[2 * i + 1].attach(b, a);
    auto hb = net.msg_pool().make<wire::Heartbeat>();
    hb->t = Timestamp::from_physical(1);
    net.send(a, b, std::move(hb));
  }
  // Warm up: several round trips populate channel maps, slabs and pools.
  sim.run_until(sim.now() + 200'000);

  std::uint64_t events_before = sim.events_executed();
  auto r = run_bench(
      "sim_network_pingpong",
      [&] {
        const std::uint64_t start_events = sim.events_executed();
        sim.run_until(sim.now() + 50'000);
        return sim.events_executed() - start_events;
      },
      /*events_per_op=*/1);
  PARIS_CHECK(sim.events_executed() > events_before);
  (void)r;

  // The whole simulator loop — event queue slab, network, pooled messages —
  // must be allocation-free in steady state. A regression in any of the
  // hot-path layers (slab recycling, pool reuse, closure inlining) trips
  // this check. Measured over a pure sim window (no harness bookkeeping).
  const std::uint64_t allocs_before = g_alloc_count;
  const std::uint64_t events_start = sim.events_executed();
  sim.run_until(sim.now() + 200'000);
  PARIS_CHECK(sim.events_executed() > events_start + 1'000);
  PARIS_CHECK_MSG(g_alloc_count == allocs_before,
                  "steady-state event loop allocated; hot path regressed");
}

// Message pool: acquire/fill/release cycle must reuse pooled objects
// (vectors keep capacity) without touching the heap.
void bench_message_pool() {
  sim::Simulation sim;
  sim::Network net(sim, sim::LatencyModel::uniform(1, 0, 10), sim::CodecMode::kSizeOnly);
  auto& pool = net.msg_pool();
  std::uint64_t sink = 0;
  const auto cycle = [&](int b) {
    auto req = pool.make<wire::ReadSliceReq>();
    req->tx = TxId::make(1, static_cast<std::uint32_t>(b));
    req->snapshot = Timestamp::from_physical(42);
    for (Key k = 0; k < 4; ++k) req->keys.push_back(k);
    sink += req->wire_size();
  };  // released here -> returns to the pool
  run_bench("message_pool_cycle", [&] {
    const int kBatch = 1024;
    for (int b = 0; b < kBatch; ++b) cycle(b);
    return kBatch;
  });
  PARIS_CHECK(sink > 0);
  PARIS_CHECK_MSG(pool.stats().reused > pool.stats().allocated,
                  "pool must recycle messages in steady state");
}

// ---------------------------------------------------------------------------
// Storage.
// ---------------------------------------------------------------------------

void bench_store_apply() {
  store::MvStore s;
  std::uint64_t i = 0;
  run_bench("store_apply_register", [&] {
    const int kBatch = 1024;
    for (int b = 0; b < kBatch; ++b) {
      s.apply(i % 4096, "12345678", Timestamp::from_physical(i + 1),
              TxId::make(1, static_cast<std::uint32_t>(i)), 0);
      ++i;
    }
    return kBatch;
  });
}

void bench_store_read() {
  store::MvStore s;
  for (std::uint64_t i = 0; i < 4096; ++i)
    for (std::uint64_t v = 0; v < 4; ++v)
      s.apply(i, "12345678", Timestamp::from_physical(100 * (v + 1)),
              TxId::make(1, static_cast<std::uint32_t>(i * 4 + v)), 0);
  const Timestamp snap = Timestamp::from_physical(250);
  std::uint64_t i = 0;
  const store::Version* sink = nullptr;
  run_bench("store_snapshot_read", [&] {
    const int kBatch = 1024;
    for (int b = 0; b < kBatch; ++b) {
      sink = s.read(i % 4096, snap);
      ++i;
    }
    return kBatch;
  });
  PARIS_CHECK(sink != nullptr);
}

void bench_store_read_counter() {
  store::MvStore s;
  // 1024 keys, each a chain of 8 binary counter deltas.
  for (std::uint64_t k = 0; k < 1024; ++k)
    for (std::uint64_t v = 0; v < 8; ++v)
      s.apply(k, Value{}, /*delta=*/3, Timestamp::from_physical(100 * (v + 1)),
              TxId::make(1, static_cast<std::uint32_t>(k * 8 + v)), 0, /*kind=*/1);
  const Timestamp snap = Timestamp::from_physical(100 * 9);
  std::uint64_t i = 0;
  std::int64_t sink = 0;
  run_bench("store_read_counter8", [&] {
    const int kBatch = 1024;
    for (int b = 0; b < kBatch; ++b) {
      sink += s.read_counter(i % 1024, snap).first;
      ++i;
    }
    return kBatch;
  });
  PARIS_CHECK(sink > 0);
}

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

wire::ReplicateBatch make_batch(int txs, int writes, const char* value = "abcdefgh") {
  wire::ReplicateBatch b;
  b.partition = 7;
  b.upto = Timestamp::from_physical(123456);
  wire::ReplicateGroup g;
  g.ct = Timestamp::from_physical(123000);
  for (int t = 0; t < txs; ++t) {
    wire::ReplicateTxn tx;
    tx.tx = TxId::make(3, static_cast<std::uint32_t>(t));
    for (int w = 0; w < writes; ++w)
      tx.writes.push_back(wire::WriteKV{static_cast<Key>(t * writes + w), value});
    g.txs.push_back(std::move(tx));
  }
  b.groups.push_back(std::move(g));
  return b;
}

void bench_wire() {
  const auto batch = make_batch(8, 4);
  std::vector<std::uint8_t> buf;
  run_bench("wire_encode_replicate_batch", [&] {
    const int kBatch = 256;
    for (int b = 0; b < kBatch; ++b) {
      buf.clear();
      wire::encode_message(batch, buf);
    }
    return kBatch;
  });
  run_bench("wire_roundtrip_replicate_batch", [&] {
    const int kBatch = 256;
    for (int b = 0; b < kBatch; ++b) {
      buf.clear();
      wire::encode_message(batch, buf);
      wire::Decoder d(buf);
      auto copy = wire::decode_message(d);
      PARIS_CHECK(copy->type() == wire::MsgType::kReplicateBatch);
    }
    return kBatch;
  });
  // The thread runtime's receive path: decode into a pooled message whose
  // vectors keep their grown capacity — steady state must be allocation-free.
  wire::MessagePool pool;
  run_bench("wire_roundtrip_pooled", [&] {
    const int kBatch = 256;
    for (int b = 0; b < kBatch; ++b) {
      buf.clear();
      wire::encode_message(batch, buf);
      wire::Decoder d(buf);
      const wire::MessagePtr copy = wire::decode_message_pooled(d, pool);
      PARIS_CHECK(copy->type() == wire::MsgType::kReplicateBatch);
    }
    return kBatch;
  });

  // Hard steady-state assertion for the nested decode: a pooled
  // ReplicateBatch's RecyclingVec nesting (groups -> txs -> writes) must
  // keep every level's capacity across reuse, so repeated decodes — with
  // VARYING shapes, exercising the recycle/grow/shrink paths — touch the
  // heap zero times once warmed. This is the thread runtime's per-ΔR
  // receive cost (ROADMAP: previously ~9 allocs/batch). One shape carries
  // values past the small-string optimization, so the assertion also
  // proves each recycled WriteKV keeps its string capacity.
  const std::array<wire::ReplicateBatch, 3> shapes = {
      make_batch(8, 4), make_batch(3, 6, "a-value-well-past-sso-capacity-0123456789"),
      make_batch(12, 1)};
  for (const auto& b : shapes) {  // warm pool + buffers for the largest shape
    buf.clear();
    wire::encode_message(b, buf);
    wire::Decoder d(buf);
    (void)wire::decode_message_pooled(d, pool);
  }
  const std::uint64_t nested_allocs_before = g_alloc_count;
  for (int i = 0; i < 3000; ++i) {
    buf.clear();
    wire::encode_message(shapes[static_cast<std::size_t>(i) % shapes.size()], buf);
    wire::Decoder d(buf);
    const wire::MessagePtr copy = wire::decode_message_pooled(d, pool);
    PARIS_CHECK(copy->type() == wire::MsgType::kReplicateBatch);
  }
  PARIS_CHECK_MSG(g_alloc_count == nested_allocs_before,
                  "nested ReplicateBatch pooled decode allocated; the thread receive "
                  "path regressed");
}

// ---------------------------------------------------------------------------
// HLC + zipfian (cheap sanity rows for the trajectory).
// ---------------------------------------------------------------------------

void bench_hlc() {
  Hlc hlc;
  std::uint64_t now = 1'000'000;
  Timestamp sink;
  run_bench("hlc_tick", [&] {
    const int kBatch = 4096;
    for (int b = 0; b < kBatch; ++b) sink = hlc.tick(now++);
    return kBatch;
  });
  PARIS_CHECK(!sink.is_zero());
}

void bench_zipfian() {
  Rng rng(7);
  Zipfian z(100'000, 0.99);
  std::uint64_t sink = 0;
  run_bench("zipfian_draw_100k", [&] {
    const int kBatch = 4096;
    for (int b = 0; b < kBatch; ++b) sink += z.draw(rng);
    return kBatch;
  });
  PARIS_CHECK(sink > 0);
}

// ---------------------------------------------------------------------------
// JSON output.
// ---------------------------------------------------------------------------

void write_json() {
  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_micro.json";
  std::FILE* f = std::fopen(path, "w");
  PARIS_CHECK_MSG(f != nullptr, "cannot open bench output file");
  std::fprintf(f, "{\n  \"bench\": \"micro\",\n  \"fast\": %s,\n  \"results\": [\n",
               fast_mode() ? "true" : "false");
  for (std::size_t i = 0; i < results().size(); ++i) {
    const auto& r = results()[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ops_per_sec\": %.0f, \"ns_per_op\": %.2f, "
                 "\"allocs_per_op\": %.4f%s}%s\n",
                 r.name.c_str(), r.ops_per_sec, r.ns_per_op, r.allocs_per_op,
                 r.events_per_sec > 0 ? ", \"is_sim_loop\": true" : "",
                 i + 1 < results().size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace paris::bench

int main() {
  using namespace paris::bench;
  std::printf("%-32s %20s %16s %18s\n", "benchmark", "throughput", "latency", "allocations");
  bench_event_queue();
  bench_sim_loop();
  bench_message_pool();
  bench_store_apply();
  bench_store_read();
  bench_store_read_counter();
  bench_wire();
  bench_hlc();
  bench_zipfian();
  write_json();
  return 0;
}
