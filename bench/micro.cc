// Micro-benchmarks (google-benchmark) for the hot substrate paths: HLC
// updates, storage reads/writes, wire encode/decode, zipfian draws, the
// event queue and histogram recording.

#include <benchmark/benchmark.h>

#include "common/hlc.h"
#include "common/rng.h"
#include "sim/event_queue.h"
#include "stats/histogram.h"
#include "storage/mv_store.h"
#include "wire/messages.h"

namespace {

using namespace paris;

void BM_HlcTick(benchmark::State& state) {
  Hlc hlc;
  std::uint64_t now = 1'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hlc.tick(now));
    now += 1;
  }
}
BENCHMARK(BM_HlcTick);

void BM_HlcTickPast(benchmark::State& state) {
  Hlc hlc;
  std::uint64_t now = 1'000'000;
  const Timestamp observed = Timestamp::from_physical(2'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hlc.tick_past(now, observed));
    now += 1;
  }
}
BENCHMARK(BM_HlcTickPast);

void BM_StoreApply(benchmark::State& state) {
  store::MvStore s;
  std::uint64_t i = 0;
  for (auto _ : state) {
    s.apply(i % 4096, "12345678", Timestamp::from_physical(i + 1), TxId::make(1, i & 0xffffffff),
            0);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_StoreApply);

void BM_StoreSnapshotRead(benchmark::State& state) {
  store::MvStore s;
  for (std::uint64_t i = 0; i < 4096; ++i)
    for (std::uint64_t v = 0; v < 4; ++v)
      s.apply(i, "12345678", Timestamp::from_physical(100 * (v + 1)), TxId::make(1, i * 4 + v), 0);
  const Timestamp snap = Timestamp::from_physical(250);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.read(i % 4096, snap));
    ++i;
  }
}
BENCHMARK(BM_StoreSnapshotRead);

wire::ReplicateBatch make_batch(int txs, int writes) {
  wire::ReplicateBatch b;
  b.partition = 7;
  b.upto = Timestamp::from_physical(123456);
  wire::ReplicateGroup g;
  g.ct = Timestamp::from_physical(123000);
  for (int t = 0; t < txs; ++t) {
    wire::ReplicateTxn tx;
    tx.tx = TxId::make(3, t);
    for (int w = 0; w < writes; ++w)
      tx.writes.push_back(wire::WriteKV{static_cast<Key>(t * writes + w), "abcdefgh"});
    g.txs.push_back(std::move(tx));
  }
  b.groups.push_back(std::move(g));
  return b;
}

void BM_WireEncodeReplicateBatch(benchmark::State& state) {
  const auto batch = make_batch(8, 4);
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    wire::encode_message(batch, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * buf.size()));
}
BENCHMARK(BM_WireEncodeReplicateBatch);

void BM_WireRoundtripReplicateBatch(benchmark::State& state) {
  const auto batch = make_batch(8, 4);
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    wire::encode_message(batch, buf);
    wire::Decoder d(buf);
    auto copy = wire::decode_message(d);
    benchmark::DoNotOptimize(copy.get());
  }
}
BENCHMARK(BM_WireRoundtripReplicateBatch);

void BM_ZipfianDraw(benchmark::State& state) {
  Rng rng(7);
  Zipfian z(static_cast<std::uint64_t>(state.range(0)), 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(z.draw(rng));
}
BENCHMARK(BM_ZipfianDraw)->Arg(1000)->Arg(100000);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  Rng rng(3);
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) q.push(t + rng.next_below(1000), [] {});
    sim::SimTime at;
    for (int i = 0; i < 16; ++i) benchmark::DoNotOptimize(q.pop(&at));
    ++t;
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  Rng rng(5);
  for (auto _ : state) h.record(rng.next_below(1'000'000));
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
