// realtime_chaos — goodput and update visibility under faults on the REAL
// thread runtime: the paper's reliability story, measured instead of
// assumed.
//
// PaRiS and BPR both presume reliable FIFO channels (TCP). The
// ReliableTransport decorator supplies that guarantee on top of a lossy
// stack, so this bench can ask what each system's *clients* experience when
// the network misbehaves underneath a working transport:
//
//  * drop 1% / 10% of EVERY message class (requests, 2PC, replication,
//    acks): goodput degrades with retransmission stalls, but both systems
//    stay correct — the run would pass the exactness checker (asserted in
//    tests/test_reliable_transport.cc; the bench measures, the tests prove).
//  * a 60-second inter-DC blackout (healed on deadline): PaRiS keeps
//    serving non-blocking reads from the stalled-but-stable snapshot and
//    local commits continue, while BPR's fresh-snapshot reads block on the
//    frozen version vector — the paper's availability trade-off, now
//    visible as a goodput gap during the outage. Update visibility p99
//    stretches to roughly the blackout length for both (nothing can be
//    installed across a dead link).
//
// Cluster: 3 DCs (AWS matrix + jitter), 6 partitions, R=2, 4 workers.
// Results land in BENCH_realtime_chaos.json (hardware_concurrency recorded:
// a single-core box serializes the workers).
//
// Environment knobs: PARIS_BENCH_FAST=1 (short runs, 3s partition),
// PARIS_BENCH_SEED, PARIS_BENCH_OUT.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

namespace {

ExperimentConfig chaos_config(System sys) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.runtime = runtime::Kind::kThreads;
  cfg.worker_threads = 4;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.ops_per_tx = 8;
  cfg.workload.partitions_per_tx = 2;
  cfg.seed = bench_seed();
  cfg.aws_latency = true;  // IAD/PDX/DUB: one-way 35..68 ms
  cfg.latency_model = runtime::LatencyModelKind::kJitter;
  cfg.reliable = true;
  // RTO above the worst modeled RTT (2 x 68 ms) so loss-free channels never
  // retransmit spuriously; fast retransmit recovers busy channels in ~RTT.
  cfg.reliable_cfg.rto_us = 200'000;
  cfg.reliable_cfg.max_rto_us = 1'000'000;
  cfg.warmup_us = 500'000;
  cfg.measure_us = fast_mode() ? 1'000'000 : 4'000'000;
  cfg.measure_visibility = true;
  cfg.visibility_sample_shift = 2;
  return cfg;
}

struct Row {
  std::string scenario;
  const char* system;
  double drop_p;
  std::uint64_t partition_ms;
  ExperimentResult result;
};

void print_row(const Row& r) {
  std::printf("%-26s %8.2f ktx/s  lat p50 %8.2f ms  vis p50 %8.2f ms  vis p99 %9.2f ms"
              "  retx %llu\n",
              (std::string(r.system) + " " + r.scenario).c_str(),
              r.result.throughput_tx_s / 1000.0, r.result.latency_us.p50 / 1000.0,
              r.result.visibility_hist.percentile(0.5) / 1000.0,
              r.result.visibility_hist.percentile(0.99) / 1000.0,
              static_cast<unsigned long long>(r.result.reliable.retransmits));
  std::fflush(stdout);
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::uint64_t partition_ms = fast_mode() ? 3'000 : 60'000;
  print_title("realtime_chaos — goodput + visibility under faults (thread runtime)",
              "3 DCs (AWS matrix + jitter), 6 partitions, R=2, reliable transport; "
              "drop {1%, 10%} of everything and a " + std::to_string(partition_ms / 1000) +
                  "s DC0<->DC1 blackout (hw concurrency " + std::to_string(hw) + ")");

  std::vector<Row> rows;

  for (const auto sys : {System::kParis, System::kBpr}) {
    // Baseline: reliable layer on, fault-free (its framing/ack overhead is
    // part of every other row, so this is the fair zero point).
    {
      auto cfg = chaos_config(sys);
      rows.push_back(Row{"baseline", proto::system_name(sys), 0, 0,
                         workload::run_experiment(cfg)});
      print_row(rows.back());
    }
    for (const double p : {0.01, 0.10}) {
      auto cfg = chaos_config(sys);
      cfg.chaos.drop_p = p;
      cfg.chaos.drop_class = runtime::ChaosDropClass::kAll;
      rows.push_back(Row{"drop " + std::to_string(static_cast<int>(p * 100)) + "%",
                         proto::system_name(sys), p, 0, workload::run_experiment(cfg)});
      print_row(rows.back());
    }
    {
      // Blackout DC0 <-> DC1 for partition_ms, healing on deadline. The
      // post-heal slack must cover retransmission backoff (max_rto 1s) plus
      // the gossip cascade that re-advances the UST, or the stalled
      // updates' visibility events never fire inside the window and the
      // tail silently under-reports.
      auto cfg = chaos_config(sys);
      const std::uint64_t start_us = 1'000'000;
      cfg.partitions.windows.push_back(runtime::PartitionWindow{
          0, 1, false, start_us, start_us + partition_ms * 1'000});
      cfg.measure_us = start_us + partition_ms * 1'000 + 6'000'000;
      rows.push_back(Row{"partition " + std::to_string(partition_ms / 1000) + "s",
                         proto::system_name(sys), 0, partition_ms,
                         workload::run_experiment(cfg)});
      print_row(rows.back());
    }
  }

  // Self-check the availability story: PaRiS goodput through the blackout
  // window must beat BPR's (reported, not asserted — the JSON is the
  // artifact readers consume).
  double paris_part = 0, bpr_part = 0;
  for (const auto& r : rows) {
    if (r.partition_ms == 0) continue;
    (std::string(r.system) == "PaRiS" ? paris_part : bpr_part) = r.result.throughput_tx_s;
  }
  std::printf("\npartition availability: PaRiS %.2f ktx/s vs BPR %.2f ktx/s through the "
              "blackout (%s)\n",
              paris_part / 1000.0, bpr_part / 1000.0,
              paris_part > bpr_part ? "PaRiS stays available, paper-consistent"
                                    : "NOT separated");

  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_realtime_chaos.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realtime_chaos\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"cluster\": {\"dcs\": 3, \"partitions\": 6, \"replication\": 2, "
                  "\"latency\": \"aws+jitter\", \"reliable_rto_ms\": 200},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"system\": \"%s\", \"scenario\": \"%s\", \"loop_mode\": \"%s\", "
        "\"drop_p\": %.2f, "
        "\"partition_ms\": %llu, \"goodput_tx_s\": %.1f, \"lat_p50_ms\": %.3f, "
        "\"lat_p99_ms\": %.3f, \"vis_p50_ms\": %.3f, \"vis_p99_ms\": %.3f, "
        "\"committed\": %llu, \"chaos_dropped\": %llu, \"partition_dropped\": %llu, "
        "\"frames\": %llu, \"retransmits\": %llu, \"coalesced\": %llu}%s\n",
        r.system, r.scenario.c_str(), loop_mode(chaos_config(System::kParis)), r.drop_p,
        static_cast<unsigned long long>(r.partition_ms), r.result.throughput_tx_s,
        r.result.latency_us.p50 / 1000.0, r.result.latency_us.p99 / 1000.0,
        r.result.visibility_hist.percentile(0.5) / 1000.0,
        r.result.visibility_hist.percentile(0.99) / 1000.0,
        static_cast<unsigned long long>(r.result.committed),
        static_cast<unsigned long long>(r.result.chaos.dropped),
        static_cast<unsigned long long>(r.result.partition.dropped),
        static_cast<unsigned long long>(r.result.reliable.frames_sent),
        static_cast<unsigned long long>(r.result.reliable.retransmits),
        static_cast<unsigned long long>(r.result.reliable.coalesced),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
