// realtime_socket — the process boundary, measured: the same cluster on the
// thread runtime (one address space) vs the socket runtime (3 real OS
// processes over TCP loopback), and the selective-repeat payoff under loss.
//
// Rows (all PaRiS, 3 DCs, 6 partitions, R=2, reliable transport on
// everywhere so framing/ack overhead is part of every row):
//
//  * threads_reliable   — goodput ceiling with zero process boundaries.
//  * sockets_reliable   — identical cluster, one process per DC; the delta
//                         is the serialize + TCP + poll-pump cost of
//                         crossing real process boundaries.
//  * sockets_sack_loss  — 3% uniform drop of EVERY message class, under the
//                         jittered 40 ms WAN model (deep windows: an RTT of
//                         replication traffic is in flight per channel, so
//                         retransmission POLICY matters), with SACK on:
//                         receivers advertise buffered [lo,hi] ranges and
//                         senders retransmit only the gaps.
//  * sockets_unbatched  — sockets_reliable with batching OFF (one frame per
//                         write syscall, 4KB reads): the pre-§12 syscall
//                         pattern, kept as the A/B control for the batched
//                         pump. syscalls_per_frame is the separating metric.
//  * sockets_uring      — sockets_reliable on the io_uring pump, emitted
//                         only when the kernel has io_uring (the JSON row is
//                         marked optional; the guard skips it with a notice
//                         when absent).
//  * sockets_gbn_loss   — the same loss with SACK off (go-back-N over the
//                         in-flight burst): the retransmission waste the
//                         60s-blackout bench measured, isolated. On bare
//                         loopback both rows would look alike — sub-ms acks
//                         let fast-retransmit (head-only, gap-shaped by
//                         nature) repair holes before the RTO scan ever
//                         fires; the WAN model is what makes the scan, and
//                         therefore the policy, load-bearing.
//
// The headline metric for the loss rows is retransmits_per_drop —
// retransmissions per chaos-eaten frame. Go-back-N resends whole bursts per
// hole, SACK about one frame per hole, so the ratio separates by an order
// of magnitude; tools/bench_guard.py guards the SACK row's value (and every
// row's goodput) against this committed baseline.
//
// This binary self-spawns its socket children (maybe_run_socket_child), so
// it must run from a real filesystem path. Environment knobs:
// PARIS_BENCH_FAST=1, PARIS_BENCH_SEED, PARIS_BENCH_OUT.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runtime/socket_runtime.h"
#include "workload/socket_runner.h"

using namespace paris;
using namespace paris::bench;

namespace {

ExperimentConfig socket_config(bool sockets) {
  ExperimentConfig cfg;
  cfg.system = System::kParis;
  cfg.runtime = sockets ? runtime::Kind::kSockets : runtime::Kind::kThreads;
  cfg.worker_threads = sockets ? 2 : 6;  // 3 children x 2 = the threads run's 6
  cfg.socket.processes = 3;
  cfg.socket.base_port = 7451;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.ops_per_tx = 8;
  cfg.workload.partitions_per_tx = 2;
  cfg.seed = bench_seed();
  cfg.aws_latency = false;  // loopback question: no WAN model on top
  cfg.reliable = true;
  cfg.reliable_cfg.rto_us = 60'000;
  cfg.reliable_cfg.max_rto_us = 500'000;
  cfg.warmup_us = 500'000;
  cfg.measure_us = fast_mode() ? 1'000'000 : 3'000'000;
  return cfg;
}

struct Row {
  std::string name;
  ExperimentResult result;
  double retx_per_drop = 0;
  bool optional = false;  ///< row may be absent on other machines (io_uring)
};

Row run_row(std::string name, const ExperimentConfig& cfg) {
  Row r{std::move(name), workload::run_experiment(cfg), 0};
  if (r.result.chaos.dropped != 0) {
    r.retx_per_drop = static_cast<double>(r.result.reliable.retransmits) /
                      static_cast<double>(r.result.chaos.dropped);
  }
  std::printf("%-20s %8.2f ktx/s  lat p50 %7.2f ms  frames %9llu  retx %7llu"
              "  dropped %6llu  retx/drop %6.2f  sack-skips %llu"
              "  sys/frame %5.2f  B/sys %6.0f\n",
              r.name.c_str(), r.result.throughput_tx_s / 1000.0,
              r.result.latency_us.p50 / 1000.0,
              static_cast<unsigned long long>(r.result.reliable.frames_sent),
              static_cast<unsigned long long>(r.result.reliable.retransmits),
              static_cast<unsigned long long>(r.result.chaos.dropped), r.retx_per_drop,
              static_cast<unsigned long long>(r.result.reliable.sacked_skips),
              r.result.socket.syscalls_per_frame(), r.result.socket.bytes_per_syscall());
  std::fflush(stdout);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  workload::maybe_run_socket_child(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  print_title("realtime_socket — threads vs 3 real processes + SACK under loss",
              "PaRiS, 3 DCs / 6 partitions / R=2, reliable transport everywhere "
              "(hw concurrency " + std::to_string(hw) + ")");

  std::vector<Row> rows;

  {
    auto cfg = socket_config(/*sockets=*/false);
    rows.push_back(run_row("threads_reliable", cfg));
  }
  {
    auto cfg = socket_config(/*sockets=*/true);
    rows.push_back(run_row("sockets_reliable", cfg));
  }
  {
    auto cfg = socket_config(/*sockets=*/true);
    cfg.socket.batch_io = false;
    rows.push_back(run_row("sockets_unbatched", cfg));
  }
  if (runtime::SocketBackend::probe_io_uring()) {
    auto cfg = socket_config(/*sockets=*/true);
    cfg.socket.pump = runtime::SocketPump::kUring;
    rows.push_back(run_row("sockets_uring", cfg));
    rows.back().optional = true;
  } else {
    std::printf("%-20s (skipped: io_uring unavailable on this kernel)\n",
                "sockets_uring");
  }
  for (const bool sack : {true, false}) {
    auto cfg = socket_config(/*sockets=*/true);
    cfg.chaos.drop_p = 0.03;
    cfg.chaos.drop_class = runtime::ChaosDropClass::kAll;
    cfg.latency_model = runtime::LatencyModelKind::kJitter;  // 40 ms WAN
    cfg.reliable_cfg.rto_us = 150'000;  // > worst modeled RTT
    cfg.reliable_cfg.sack = sack;
    rows.push_back(run_row(sack ? "sockets_sack_loss" : "sockets_gbn_loss", cfg));
  }

  // Self-check the selective-repeat story (reported; the guard asserts).
  const double sack = rows[rows.size() - 2].retx_per_drop;
  const double gbn = rows[rows.size() - 1].retx_per_drop;
  std::printf("\nretransmits per dropped frame: SACK %.2f vs go-back-N %.2f (%s)\n", sack,
              gbn,
              sack < gbn ? "selective repeat wins, as designed" : "NOT separated");

  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_realtime_socket.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realtime_socket\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  // The committed baseline is measured in the same fast mode CI runs, so
  // the guard compares like against like; record which mode produced this
  // document.
  std::fprintf(f, "  \"measure_ms\": %d,\n", fast_mode() ? 1000 : 3000);
  std::fprintf(f, "  \"cluster\": {\"dcs\": 3, \"partitions\": 6, \"replication\": 2, "
                  "\"processes\": 3, \"reliable_rto_ms\": 60, "
                  "\"loss_rows\": {\"drop_p\": 0.03, \"latency\": \"uniform40ms+jitter\", "
                  "\"rto_ms\": 150}},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"loop_mode\": \"%s\", \"goodput_tx_s\": %.1f, "
        "\"lat_p50_ms\": %.3f, "
        "\"committed\": %llu, \"frames\": %llu, \"retransmits\": %llu, "
        "\"dropped\": %llu, \"retransmits_per_drop\": %.3f, \"sack_skips\": %llu, "
        "\"socket_frames_out\": %llu, \"syscalls_per_frame\": %.3f, "
        "\"bytes_per_syscall\": %.1f, \"flushes\": %llu, "
        "\"backpressure_stalls\": %llu%s}%s\n",
        r.name.c_str(), loop_mode(socket_config(/*sockets=*/true)),
        r.result.throughput_tx_s, r.result.latency_us.p50 / 1000.0,
        static_cast<unsigned long long>(r.result.committed),
        static_cast<unsigned long long>(r.result.reliable.frames_sent),
        static_cast<unsigned long long>(r.result.reliable.retransmits),
        static_cast<unsigned long long>(r.result.chaos.dropped), r.retx_per_drop,
        static_cast<unsigned long long>(r.result.reliable.sacked_skips),
        static_cast<unsigned long long>(r.result.socket.frames_out),
        r.result.socket.syscalls_per_frame(), r.result.socket.bytes_per_syscall(),
        static_cast<unsigned long long>(r.result.socket.flushes),
        static_cast<unsigned long long>(r.result.socket.backpressure_stalls),
        r.optional ? ", \"optional\": true" : "",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
