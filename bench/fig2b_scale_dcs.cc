// Figure 2b: PaRiS throughput when varying the number of DCs (3, 5, 10) for
// 6 and 12 machines per DC. Paper result: ~3.33x scaling from 3 to 10 DCs.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

int main() {
  print_title("Figure 2b: throughput vs number of DCs",
              "default workload (95:5 r:w, 95:5 local:multi), R=2, saturating load");

  const std::uint32_t threads = fast_mode() ? 64 : 128;
  std::printf("%-10s %-8s %12s %12s %10s\n", "mach/DC", "DCs", "partitions", "ktx/s",
              "scale");

  for (std::uint32_t mpd : {6u, 12u}) {
    double base = 0;
    for (std::uint32_t dcs : {3u, 5u, 10u}) {
      auto cfg = default_config(System::kParis);
      cfg.num_dcs = dcs;
      cfg.num_partitions = dcs * mpd / cfg.replication;
      cfg.threads_per_process = threads;
      const auto res = run_experiment(cfg);
      if (base == 0) base = res.throughput_tx_s;
      std::printf("%-10u %-8u %12u %12.1f %9.2fx\n", mpd, dcs, cfg.num_partitions,
                  res.throughput_tx_s / 1000.0, res.throughput_tx_s / base);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(paper: ideal 3.33x improvement scaling 3 -> 10 DCs)\n");
  return 0;
}
