// Ablation A2 (not in the paper): effect of the replication factor R on
// PaRiS. Higher R means more local coverage (fewer remote reads, so higher
// locality for the same workload) but more replication traffic and more
// version-vector entries to stabilize.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

int main() {
  print_title("Ablation A2: replication factor",
              "PaRiS, 5 DCs, 45 partitions, default workload, fixed load");

  std::printf("%-6s %12s %10s %12s %14s %14s\n", "R", "mach/DC", "ktx/s", "mean_ms",
              "vis_p50_ms", "GB_sent");

  for (std::uint32_t r : {1u, 2u, 3u, 5u}) {
    auto cfg = default_config(System::kParis);
    cfg.replication = r;
    cfg.threads_per_process = fast_mode() ? 16 : 32;
    cfg.measure_visibility = true;
    cfg.visibility_sample_shift = 4;
    const auto res = run_experiment(cfg);
    std::printf("%-6u %12.0f %10.1f %12.2f %14.2f %14.3f\n", r, cfg.machines_per_dc(),
                res.throughput_tx_s / 1000.0, res.latency_us.mean / 1000.0,
                res.visibility_hist.count()
                    ? res.visibility_hist.percentile(0.5) / 1000.0
                    : 0.0,
                static_cast<double>(res.bytes_sent) / 1e9);
    std::fflush(stdout);
  }
  std::printf("\nExpectation: higher R adds machines/DC and replication traffic; R=1\n"
              "(no geo-replication of a partition) makes many reads remote.\n");
  return 0;
}
