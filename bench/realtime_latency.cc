// realtime_latency — latency-sensitive figures on the REAL thread runtime.
//
// The LatencyTransport decorator gives the thread backend the same AWS
// per-DC-pair WAN model the simulator uses, which unlocks the paper's
// latency results outside the simulator:
//
//  * fig4 shape — update-visibility latency, PaRiS vs BPR: PaRiS makes an
//    update visible only once the UST passes its commit timestamp (a full
//    stabilization round behind), BPR as soon as it is applied. The
//    visibility CDFs must separate the same way on threads as on sim.
//  * fig3 shape — transaction latency vs locality: multi-DC transactions
//    pay WAN round trips, local ones do not.
//
// Each (system, runtime) cell runs the identical deployment: 3 DCs (N.
// Virginia, Oregon, Ireland), 6 partitions, R=2, AWS latency matrix with
// jitter. Results land in BENCH_realtime_latency.json; threads runs record
// wall-clock behavior, so hardware_concurrency is captured alongside.
//
// Environment knobs: PARIS_BENCH_FAST=1, PARIS_BENCH_SEED, PARIS_BENCH_OUT.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

namespace {

ExperimentConfig latency_config(System sys, runtime::Kind kind) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.runtime = kind;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.ops_per_tx = 8;
  cfg.workload.partitions_per_tx = 2;
  cfg.seed = bench_seed();
  cfg.aws_latency = true;  // IAD/PDX/DUB: one-way 35..68 ms
  cfg.warmup_us = fast_mode() ? 300'000 : 500'000;
  cfg.measure_us = fast_mode() ? 700'000 : 1'500'000;
  cfg.measure_visibility = true;
  cfg.visibility_sample_shift = 2;  // sample 1/4: short windows need samples
  if (kind == runtime::Kind::kThreads) {
    cfg.worker_threads = 4;
    cfg.latency_model = runtime::LatencyModelKind::kJitter;
  }
  return cfg;
}

struct Row {
  std::string label;
  const char* system;
  const char* runtime;
  double multi_ratio;
  ExperimentResult result;
};

void print_row(const Row& r) {
  std::printf("%-22s %8.1f ktx/s  lat p50 %7.2f ms  vis p50 %7.2f ms  "
              "vis p99 %7.2f ms  (n=%llu)\n",
              r.label.c_str(), r.result.throughput_tx_s / 1000.0,
              r.result.latency_us.p50 / 1000.0,
              r.result.visibility_hist.percentile(0.5) / 1000.0,
              r.result.visibility_hist.percentile(0.99) / 1000.0,
              static_cast<unsigned long long>(r.result.committed));
  std::fflush(stdout);
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  print_title("realtime_latency — WAN latency model on the thread runtime",
              "3 DCs (AWS matrix + jitter), 6 partitions, R=2; fig4 visibility + "
              "fig3 locality shapes, sim vs threads (hw concurrency " +
                  std::to_string(hw) + ")");

  std::vector<Row> rows;

  // fig4 shape: visibility latency, both systems on both runtimes.
  for (const auto kind : {runtime::Kind::kSim, runtime::Kind::kThreads}) {
    for (const auto sys : {System::kParis, System::kBpr}) {
      auto cfg = latency_config(sys, kind);
      Row r{std::string(proto::system_name(sys)) + "/" + runtime::kind_name(kind),
            proto::system_name(sys), runtime::kind_name(kind),
            cfg.workload.multi_dc_ratio, workload::run_experiment(cfg)};
      print_row(r);
      rows.push_back(std::move(r));
    }
  }

  // fig3 shape: PaRiS-on-threads transaction latency vs locality.
  for (const double multi : {0.0, 0.5}) {
    auto cfg = latency_config(System::kParis, runtime::Kind::kThreads);
    cfg.workload.multi_dc_ratio = multi;
    cfg.measure_visibility = false;
    Row r{"PaRiS/threads multi=" + std::to_string(multi).substr(0, 3),
          "PaRiS", "threads", multi, workload::run_experiment(cfg)};
    print_row(r);
    rows.push_back(std::move(r));
  }

  // Self-check the fig4 shape on both runtimes: PaRiS visibility must sit
  // above BPR's (the paper's headline trade-off). Reported, not asserted —
  // the JSON is the artifact CI and readers consume.
  for (const char* rt : {"sim", "threads"}) {
    double paris_p50 = 0, bpr_p50 = 0;
    for (const auto& r : rows) {
      if (std::string(r.runtime) != rt || r.multi_ratio != 0.05) continue;
      (std::string(r.system) == "PaRiS" ? paris_p50 : bpr_p50) =
          r.result.visibility_hist.percentile(0.5);
    }
    std::printf("\n%s fig4 separation: PaRiS vis p50 %.2f ms vs BPR %.2f ms (%s)\n", rt,
                paris_p50 / 1000.0, bpr_p50 / 1000.0,
                paris_p50 > bpr_p50 ? "separated, paper-consistent" : "NOT separated");
  }

  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_realtime_latency.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realtime_latency\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"cluster\": {\"dcs\": 3, \"partitions\": 6, \"replication\": 2, "
                  "\"latency\": \"aws+jitter\"},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"system\": \"%s\", \"runtime\": \"%s\", \"loop_mode\": \"%s\", "
        "\"multi_dc_ratio\": %.2f, "
        "\"throughput_tx_s\": %.1f, \"lat_p50_ms\": %.3f, \"lat_p99_ms\": %.3f, "
        "\"vis_p50_ms\": %.3f, \"vis_p99_ms\": %.3f, \"committed\": %llu}%s\n",
        r.system, r.runtime, loop_mode(latency_config(System::kParis, runtime::Kind::kSim)),
        r.multi_ratio, r.result.throughput_tx_s,
        r.result.latency_us.p50 / 1000.0, r.result.latency_us.p99 / 1000.0,
        r.result.visibility_hist.percentile(0.5) / 1000.0,
        r.result.visibility_hist.percentile(0.99) / 1000.0,
        static_cast<unsigned long long>(r.result.committed),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
