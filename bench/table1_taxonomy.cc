// Table I: taxonomy of causally consistent systems by transaction support,
// non-blocking parallel reads, partial replication, and dependency
// meta-data. Reproduced verbatim from the paper (it is a literature
// classification, not a measurement); PaRiS is the only row with generic
// transactions + non-blocking reads + partial replication + constant
// meta-data.

#include <cstdio>

namespace {

struct Row {
  const char* system;
  const char* txs;
  const char* nonblocking_reads;
  const char* partial_replication;
  const char* metadata;
};

constexpr Row kRows[] = {
    {"COPS [1]", "ROT", "yes", "no", "O(|deps|)"},
    {"Eiger [2]", "ROT/WOT", "yes", "no", "O(|deps|)"},
    {"ChainReaction [8]", "ROT", "no", "no", "M"},
    {"Orbe [7]", "ROT", "no", "no", "1 ts"},
    {"GentleRain [6]", "ROT", "no", "no", "1 ts"},
    {"POCC [9]", "ROT", "no", "no", "M"},
    {"COPS-SNOW [14]", "ROT", "yes", "no", "O(|deps|)"},
    {"OCCULT [5]", "Generic", "no", "no", "O(M)"},
    {"Cure [4]", "Generic", "no", "no", "M"},
    {"Wren [25]", "Generic", "yes", "no", "2 ts"},
    {"AV [15]", "Generic", "yes", "no", "M"},
    {"Xiang, Vaidya [37]", "-", "no", "yes", "1 ts"},
    {"Contrarian [10]", "ROT", "yes", "no", "M"},
    {"C3 [35]", "-", "yes", "yes", "M"},
    {"Saturn [34]", "-", "yes", "yes", "1 ts"},
    {"Karma [36]", "ROT", "yes", "yes", "O(|deps|)"},
    {"CausalSpartan [11]", "-", "yes", "no", "M"},
    {"Bolt-on CC [33]", "-", "yes", "no", "M"},
    {"EunomiaKV [26]", "-", "yes", "no", "M"},
    {"PaRiS (this work)", "Generic", "yes", "yes", "1 ts"},
};

}  // namespace

int main() {
  std::printf("Table I: taxonomy of the main causally consistent systems\n");
  std::printf("(M = number of DCs; ts = timestamp; ROT/WOT = one-shot read-only/"
              "write-only transactions)\n\n");
  std::printf("%-22s %-10s %-14s %-13s %-10s\n", "System", "Txs", "Nonbl. reads",
              "Partial rep.", "Meta-data");
  std::printf("%-22s %-10s %-14s %-13s %-10s\n", "------", "---", "------------",
              "------------", "---------");
  for (const auto& r : kRows)
    std::printf("%-22s %-10s %-14s %-13s %-10s\n", r.system, r.txs, r.nonblocking_reads,
                r.partial_replication, r.metadata);
  std::printf("\nPaRiS is the only system combining generic transactions, non-blocking\n"
              "parallel reads, partial replication, and constant dependency meta-data.\n");
  return 0;
}
