// realtime_recovery — self-healing, measured: the same supervised 3-process
// socket cluster with and without a SIGKILL of rank 1 mid-measurement.
//
// Rows (all PaRiS, 3 DCs / 3 partitions / R=3 so every partition survives
// the crash at full read locality, reliable transport on, supervision on
// everywhere so its bookkeeping cost is part of both rows):
//
//  * sockets_steady     — supervised but unharmed: the goodput ceiling, and
//                         the proof that supervision + epoch beacons cost
//                         nothing when nobody dies.
//  * sockets_kill_heal  — rank 1 is SIGKILLed 1/3 into the measurement
//                         window; the supervisor respawns it with a bumped
//                         epoch, the respawn streams a snapshot from a
//                         donor survivor plus catch-up deltas, and the
//                         cluster reconverges. Goodput includes the dip;
//                         time_to_rejoin_ms is the respawned child's
//                         mesh-join + state-transfer time.
//
// Both rows run the offline exactness checker over the merged cross-process
// history — a nonzero "violations" in the JSON is a consistency bug, not a
// performance number. tools/bench_guard.py guards both rows' goodput
// against this committed baseline; the kill row's floor is what keeps the
// healing path honest (a respawn that stops recovering shows up as a
// collapsed goodput or a failed run, not a silent skew).
//
// This binary self-spawns its socket children (maybe_run_socket_child), so
// it must run from a real filesystem path. Environment knobs:
// PARIS_BENCH_FAST=1, PARIS_BENCH_SEED, PARIS_BENCH_OUT.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "workload/socket_runner.h"

using namespace paris;
using namespace paris::bench;

namespace {

ExperimentConfig recovery_config(bool kill) {
  ExperimentConfig cfg;
  cfg.system = System::kParis;
  cfg.runtime = runtime::Kind::kSockets;
  cfg.socket.processes = 3;
  cfg.socket.base_port = kill ? 7471 : 7461;
  cfg.socket.supervise = true;
  cfg.socket.max_respawns = 2;
  cfg.num_dcs = 3;
  cfg.num_partitions = 3;
  cfg.replication = 3;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.ops_per_tx = 8;
  cfg.workload.partitions_per_tx = 2;
  // DESIGN §11: single-DC transactions, so a SIGKILL cannot separate a
  // multi-DC coordinator from its replicated writes mid-2PC.
  cfg.workload.multi_dc_ratio = 0.0;
  cfg.seed = bench_seed();
  cfg.aws_latency = false;  // loopback question: no WAN model on top
  cfg.reliable = true;
  cfg.reliable_cfg.rto_us = 60'000;
  cfg.reliable_cfg.max_rto_us = 500'000;
  cfg.check_consistency = true;  // the healed history must also be CORRECT
  cfg.warmup_us = 500'000;
  cfg.measure_us = fast_mode() ? 1'500'000 : 3'000'000;
  if (kill) {
    cfg.socket.kill_rank = 1;
    // 1/3 into the measurement window: the respawn's recovery and rejoin
    // land inside the measured region, so the goodput includes the dip.
    cfg.socket.kill_after_ms =
        static_cast<std::uint64_t>((cfg.warmup_us + cfg.measure_us / 3) / 1000);
  }
  return cfg;
}

struct Row {
  std::string name;
  ExperimentResult result;
};

Row run_row(std::string name, const ExperimentConfig& cfg) {
  Row r{std::move(name), workload::run_experiment(cfg)};
  std::printf("%-20s %8.2f ktx/s  lat p50 %7.2f ms  committed %8llu  respawns %llu"
              "  snapshots %llu  catchups %llu  rejoin %llu ms  violations %zu\n",
              r.name.c_str(), r.result.throughput_tx_s / 1000.0,
              r.result.latency_us.p50 / 1000.0,
              static_cast<unsigned long long>(r.result.committed),
              static_cast<unsigned long long>(r.result.respawns),
              static_cast<unsigned long long>(r.result.snapshots_served),
              static_cast<unsigned long long>(r.result.catchups_served),
              static_cast<unsigned long long>(r.result.recovery_ms),
              r.result.violations.size());
  for (const auto& v : r.result.violations) std::printf("  VIOLATION: %s\n", v.c_str());
  std::fflush(stdout);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  workload::maybe_run_socket_child(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  print_title("realtime_recovery — SIGKILL a rank under load, measure the heal",
              "PaRiS, 3 DCs / 3 partitions / R=3, 3 supervised processes, reliable "
              "transport, exactness checker on (hw concurrency " + std::to_string(hw) + ")");

  std::vector<Row> rows;
  rows.push_back(run_row("sockets_steady", recovery_config(/*kill=*/false)));
  rows.push_back(run_row("sockets_kill_heal", recovery_config(/*kill=*/true)));

  const auto& heal = rows[1].result;
  const bool healed = heal.respawns >= 1 && heal.snapshots_served >= 1 &&
                      heal.violations.empty() && rows[0].result.violations.empty();
  std::printf("\n%s: %llu respawn(s), %llu snapshot transfer(s), rejoin in %llu ms\n",
              healed ? "healed, checker clean" : "DID NOT HEAL",
              static_cast<unsigned long long>(heal.respawns),
              static_cast<unsigned long long>(heal.snapshots_served),
              static_cast<unsigned long long>(heal.recovery_ms));

  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_realtime_recovery.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realtime_recovery\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"cluster\": {\"dcs\": 3, \"partitions\": 3, \"replication\": 3, "
                  "\"processes\": 3, \"supervised\": true, \"kill_rank\": 1, "
                  "\"respawn_budget\": 2, \"checker\": \"exactness, merged history\"},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"loop_mode\": \"%s\", \"goodput_tx_s\": %.1f, "
        "\"lat_p50_ms\": %.3f, "
        "\"committed\": %llu, \"respawns\": %llu, \"snapshots_served\": %llu, "
        "\"catchups_served\": %llu, \"prepared_fenced\": %llu, "
        "\"stale_epoch_fenced\": %llu, \"time_to_rejoin_ms\": %llu, "
        "\"violations\": %zu}%s\n",
        r.name.c_str(), loop_mode(recovery_config(/*kill=*/false)),
        r.result.throughput_tx_s, r.result.latency_us.p50 / 1000.0,
        static_cast<unsigned long long>(r.result.committed),
        static_cast<unsigned long long>(r.result.respawns),
        static_cast<unsigned long long>(r.result.snapshots_served),
        static_cast<unsigned long long>(r.result.catchups_served),
        static_cast<unsigned long long>(r.result.prepared_fenced),
        static_cast<unsigned long long>(r.result.socket.fenced_stale_epoch),
        static_cast<unsigned long long>(r.result.recovery_ms),
        r.result.violations.size(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return healed ? 0 : 1;
}
