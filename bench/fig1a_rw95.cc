// Figure 1a: throughput vs. average transaction latency, PaRiS vs. BPR,
// 95:5 r:w ratio (19 reads + 1 write per transaction), default deployment
// (5 DCs, 45 partitions, R=2, 18 machines/DC, 4 partitions/tx, 95:5
// local:multi). Also prints the §V-B "blocking time" statistic for BPR.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

int main() {
  const auto wl = WorkloadSpec::read_heavy();
  print_title("Figure 1a: throughput vs avg TX latency (95:5 r:w)",
              "5 DCs, 45 partitions, R=2, 18 machines/DC | " + wl.describe());

  const std::vector<std::uint32_t> paris_threads =
      fast_mode() ? std::vector<std::uint32_t>{4, 32, 128}
                  : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64, 96, 128, 192};
  // BPR needs far more concurrency to cover blocked reads (§V-B).
  const std::vector<std::uint32_t> bpr_threads =
      fast_mode() ? std::vector<std::uint32_t>{32, 128, 384}
                  : std::vector<std::uint32_t>{8, 16, 32, 64, 128, 256, 512, 768, 1024};

  std::printf("\n--- PaRiS ---\n");
  const auto paris_curve = run_curve(default_config(System::kParis, wl), paris_threads);

  std::printf("\n--- BPR ---\n");
  const auto bpr_curve = run_curve(default_config(System::kBpr, wl), bpr_threads);

  const auto& pp = peak(paris_curve);
  const auto& bp = peak(bpr_curve);
  std::printf("\nPeak throughput: PaRiS %.1f ktx/s @ %.2f ms | BPR %.1f ktx/s @ %.2f ms\n",
              pp.result.throughput_tx_s / 1000.0, pp.result.latency_us.mean / 1000.0,
              bp.result.throughput_tx_s / 1000.0, bp.result.latency_us.mean / 1000.0);
  std::printf("PaRiS/BPR: %.2fx throughput, %.2fx lower mean latency at peak\n",
              pp.result.throughput_tx_s / bp.result.throughput_tx_s,
              bp.result.latency_us.mean / pp.result.latency_us.mean);
  std::printf("BPR avg read blocking time at top throughput: %.1f ms "
              "(paper: ~29 ms for 95:5)\n",
              bp.result.avg_block_ms);
  return 0;
}
