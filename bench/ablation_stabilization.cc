// Ablation A1 (not in the paper): sensitivity of PaRiS to the stabilization
// intervals ΔG/ΔU (the paper fixes both at 5 ms). Faster gossip buys
// fresher snapshots (lower update visibility latency, smaller client write
// caches) at the price of more gossip messages; throughput is expected to
// be nearly flat because gossip is tiny compared to transaction work.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

int main() {
  print_title("Ablation A1: stabilization interval ΔG = ΔU",
              "PaRiS, default workload, 5 DCs, 45 partitions, R=2");

  std::printf("%-10s %10s %14s %14s %14s %12s\n", "Δ(ms)", "ktx/s", "vis_p50_ms",
              "vis_p99_ms", "gossip_msgs", "max_cache");

  for (sim::SimTime delta_ms : {1u, 5u, 20u, 50u}) {
    auto cfg = default_config(System::kParis);
    cfg.threads_per_process = fast_mode() ? 16 : 32;
    cfg.protocol.delta_g_us = delta_ms * 1000;
    cfg.protocol.delta_u_us = delta_ms * 1000;
    cfg.measure_visibility = true;
    cfg.visibility_sample_shift = 4;
    const auto res = run_experiment(cfg);
    std::printf("%-10llu %10.1f %14.2f %14.2f %14llu %12zu\n",
                static_cast<unsigned long long>(delta_ms), res.throughput_tx_s / 1000.0,
                res.visibility_hist.percentile(0.5) / 1000.0,
                res.visibility_hist.percentile(0.99) / 1000.0,
                static_cast<unsigned long long>(res.gossip_msgs), res.max_client_cache);
    std::fflush(stdout);
  }
  std::printf("\nExpectation: visibility latency grows roughly linearly with Δ while\n"
              "throughput stays flat — the UST gossip is off the critical path.\n");
  return 0;
}
