// Figure 3a/3b: PaRiS maximum throughput (a) and the latency at that
// throughput (b) when varying transaction locality from 100:0 to 50:50
// local-DC:multi-DC. As in the paper, lower locality needs more client
// threads to saturate (requests spend most of their time crossing DCs), so
// each locality point sweeps a small thread ladder and reports the peak.

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

int main() {
  print_title("Figure 3: throughput and latency vs transaction locality",
              "default deployment (5 DCs, 45 partitions, R=2), 95:5 r:w");

  struct Point {
    const char* label;
    double multi_ratio;
    std::vector<std::uint32_t> threads;
  };
  const std::vector<Point> points = {
      {"100:0", 0.00, fast_mode() ? std::vector<std::uint32_t>{96}
                                  : std::vector<std::uint32_t>{64, 128, 192}},
      {"95:5", 0.05, fast_mode() ? std::vector<std::uint32_t>{96}
                                 : std::vector<std::uint32_t>{64, 128, 192}},
      {"90:10", 0.10, fast_mode() ? std::vector<std::uint32_t>{128}
                                  : std::vector<std::uint32_t>{96, 192, 288}},
      {"50:50", 0.50, fast_mode() ? std::vector<std::uint32_t>{256}
                                  : std::vector<std::uint32_t>{192, 384, 512}},
  };

  std::printf("%-10s %10s %12s %10s %10s %10s\n", "locality", "ktx/s", "mean_ms",
              "p50_ms", "p99_ms", "threads");
  for (const auto& p : points) {
    auto cfg = default_config(System::kParis);
    cfg.workload.multi_dc_ratio = p.multi_ratio;
    // "Max throughput" point: the smallest thread count within 3% of the
    // best observed throughput (reporting the most-oversaturated point
    // would inflate the latency side of the figure).
    std::vector<std::pair<std::uint32_t, ExperimentResult>> pts;
    double best_tput = 0;
    for (std::uint32_t t : p.threads) {
      cfg.threads_per_process = t;
      pts.emplace_back(t, run_experiment(cfg));
      best_tput = std::max(best_tput, pts.back().second.throughput_tx_s);
    }
    ExperimentResult best;
    std::uint32_t best_threads = 0;
    for (auto& [t, res] : pts) {
      if (res.throughput_tx_s >= 0.97 * best_tput) {
        best_threads = t;
        best = std::move(res);
        break;
      }
    }
    std::printf("%-10s %10.1f %12.2f %10.2f %10.2f %10u\n", p.label,
                best.throughput_tx_s / 1000.0, best.latency_us.mean / 1000.0,
                best.latency_us.p50 / 1000.0, best.latency_us.p99 / 1000.0, best_threads);
    std::fflush(stdout);
  }
  std::printf("\n(paper: throughput drops ~16%% from 100:0 to 50:50 while latency grows\n"
              " by an order of magnitude — the price of remote accesses)\n");
  return 0;
}
