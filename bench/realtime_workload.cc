// realtime_workload — the open-loop engine and workload-aware placement as
// committed, guarded artifacts (DESIGN §14).
//
// Three rows, all OPEN loop (every other realtime bench is closed loop; the
// loop_mode field keeps bench_guard from ever comparing across that line):
//
//  * openloop_zipf_threads  — Poisson arrivals over Zipf(0.99) keys on the
//    thread runtime. The headline pair is achieved vs intended rate (the
//    engine must keep up with its own schedule on an unloaded box) and the
//    intended/service p99 split (coordinated-omission-safe latency: intended
//    charges queueing from the scheduled instant, service only the in-flight
//    time).
//  * openloop_zipf_sockets  — the identical schedule against 3 real
//    processes over TCP loopback.
//  * placement_migration    — hot-spot skew accessed from every DC with the
//    workload-aware placement brain migrating the 10 hottest keys mid-run.
//    Emits the before/after assignment scores (replicate_factor, load
//    relative stddev) so the payoff is a committed number, plus the chain
//    accounting the checkers vouch for.
//
// The guard rules wired to this document: goodput floor (goodput_tx_s),
// achieved/intended ratio floor (achieved_intended_ratio — a scheduler that
// silently falls behind its arrival process fails even if raw goodput looks
// healthy), and loop_mode mismatch.
//
// Environment knobs: PARIS_BENCH_FAST=1, PARIS_BENCH_SEED, PARIS_BENCH_OUT.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "placement/placement.h"
#include "workload/socket_runner.h"

using namespace paris;
using namespace paris::bench;

namespace {

constexpr std::uint16_t kBasePort = 7481;

ExperimentConfig openloop_config(runtime::Kind kind) {
  ExperimentConfig cfg;
  cfg.system = System::kParis;
  cfg.runtime = kind;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 4;
  if (kind == runtime::Kind::kSockets) {
    cfg.socket.processes = 3;
    cfg.socket.base_port = kBasePort;
  }
  cfg.workload.key_dist = workload::KeyDistKind::kZipfRejection;
  cfg.workload.zipf_theta = 0.99;
  cfg.workload.keys_per_partition = 1000;
  cfg.openloop.enabled = true;
  cfg.openloop.arrival_rate = 3000;  // cluster-total tx/s, well under capacity
  cfg.warmup_us = 300'000;
  cfg.measure_us = fast_mode() ? 1'200'000 : 3'000'000;
  cfg.check_consistency = true;
  cfg.aws_latency = false;
  cfg.seed = bench_seed();
  return cfg;
}

ExperimentConfig migration_config() {
  auto cfg = openloop_config(runtime::Kind::kThreads);
  // Hot-spot skew accessed from every DC: each hot key has a strictly
  // better home, so all top-k moves are real migrations under load.
  cfg.workload.key_dist = workload::KeyDistKind::kHotspot;
  cfg.workload.multi_dc_ratio = 1.0;
  cfg.openloop.arrival_rate = 2500;
  cfg.protocol.placement_policy =
      static_cast<std::uint8_t>(placement::Policy::kWorkloadAware);
  cfg.protocol.migrate_top_k = 10;
  cfg.protocol.migrate_at_us = 400'000;
  cfg.measure_us = fast_mode() ? 2'200'000 : 5'000'000;
  return cfg;
}

struct Row {
  std::string name;
  const char* loop;
  ExperimentResult result;
};

Row run_row(std::string name, const ExperimentConfig& cfg) {
  Row r{std::move(name), loop_mode(cfg), workload::run_experiment(cfg)};
  const auto& res = r.result;
  std::printf("%-24s %8.2f ktx/s  intended %7.0f/s achieved %7.0f/s  "
              "int p99 %7.2f ms  svc p99 %7.2f ms  overdue %6llu  viol %zu\n",
              r.name.c_str(), res.throughput_tx_s / 1000.0, res.intended_rate_tx_s,
              res.achieved_rate_tx_s,
              static_cast<double>(res.intended_hist.percentile(0.99)) / 1000.0,
              static_cast<double>(res.service_hist.percentile(0.99)) / 1000.0,
              static_cast<unsigned long long>(res.overdue), res.violations.size());
  std::fflush(stdout);
  return r;
}

double ratio(const ExperimentResult& res) {
  return res.intended_rate_tx_s > 0 ? res.achieved_rate_tx_s / res.intended_rate_tx_s
                                    : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  workload::maybe_run_socket_child(argc, argv);

  const unsigned hw = std::thread::hardware_concurrency();
  print_title("realtime_workload — open-loop engine + workload-aware placement",
              "PaRiS, 3 DCs / 6 partitions / R=2, Poisson arrivals, CO-safe "
              "latency; migration row moves the 10 hottest keys mid-run "
              "(hw concurrency " + std::to_string(hw) + ")");

  std::vector<Row> rows;
  rows.push_back(run_row("openloop_zipf_threads", openloop_config(runtime::Kind::kThreads)));
  rows.push_back(run_row("openloop_zipf_sockets", openloop_config(runtime::Kind::kSockets)));
  rows.push_back(run_row("placement_migration", migration_config()));

  const auto& mig = rows.back().result;
  std::printf("\nplacement: replicate_factor %.3f -> %.3f, load rel-stddev "
              "%.3f -> %.3f, %llu keys moved (%llu chains shipped / %llu installed)\n",
              mig.replicate_factor_before, mig.replicate_factor_after,
              mig.load_rel_stddev_before, mig.load_rel_stddev_after,
              static_cast<unsigned long long>(mig.keys_migrated),
              static_cast<unsigned long long>(mig.migrate_chains_sent),
              static_cast<unsigned long long>(mig.migrate_chains_installed));

  bool clean = true;
  for (const auto& r : rows) {
    for (const auto& v : r.result.violations) {
      std::fprintf(stderr, "%s: VIOLATION %s\n", r.name.c_str(), v.c_str());
      clean = false;
    }
  }

  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_realtime_workload.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realtime_workload\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"measure_ms\": %d,\n", fast_mode() ? 1200 : 3000);
  std::fprintf(f, "  \"cluster\": {\"dcs\": 3, \"partitions\": 6, \"replication\": 2, "
                  "\"keys_per_partition\": 1000, \"openloop_rows\": "
                  "{\"key_dist\": \"zipf_rejection\", \"theta\": 0.99, "
                  "\"arrival_tx_s\": 3000}, \"migration_row\": "
                  "{\"key_dist\": \"hotspot\", \"migrate_top_k\": 10, "
                  "\"arrival_tx_s\": 2500}},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const auto& res = r.result;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"loop_mode\": \"%s\", \"goodput_tx_s\": %.1f, "
        "\"intended_rate_tx_s\": %.1f, \"achieved_rate_tx_s\": %.1f, "
        "\"achieved_intended_ratio\": %.4f, "
        "\"intended_p50_ms\": %.3f, \"intended_p99_ms\": %.3f, "
        "\"service_p50_ms\": %.3f, \"service_p99_ms\": %.3f, "
        "\"scheduled\": %llu, \"overdue\": %llu, \"max_backlog\": %llu, "
        "\"committed\": %llu, \"violations\": %zu",
        r.name.c_str(), r.loop, res.throughput_tx_s, res.intended_rate_tx_s,
        res.achieved_rate_tx_s, ratio(res),
        static_cast<double>(res.intended_hist.percentile(0.5)) / 1000.0,
        static_cast<double>(res.intended_hist.percentile(0.99)) / 1000.0,
        static_cast<double>(res.service_hist.percentile(0.5)) / 1000.0,
        static_cast<double>(res.service_hist.percentile(0.99)) / 1000.0,
        static_cast<unsigned long long>(res.scheduled),
        static_cast<unsigned long long>(res.overdue),
        static_cast<unsigned long long>(res.max_backlog),
        static_cast<unsigned long long>(res.committed), res.violations.size());
    if (res.keys_migrated > 0 || res.sketch_reports > 0) {
      std::fprintf(
          f,
          ", \"replicate_factor_before\": %.4f, \"replicate_factor_after\": %.4f, "
          "\"load_rel_stddev_before\": %.4f, \"load_rel_stddev_after\": %.4f, "
          "\"keys_migrated\": %llu, \"migrate_chains_sent\": %llu, "
          "\"migrate_chains_installed\": %llu, \"sketch_reports\": %llu",
          res.replicate_factor_before, res.replicate_factor_after,
          res.load_rel_stddev_before, res.load_rel_stddev_after,
          static_cast<unsigned long long>(res.keys_migrated),
          static_cast<unsigned long long>(res.migrate_chains_sent),
          static_cast<unsigned long long>(res.migrate_chains_installed),
          static_cast<unsigned long long>(res.sketch_reports));
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return clean ? 0 : 1;
}
