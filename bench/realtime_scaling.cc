// realtime_scaling — ThreadRuntime workers vs throughput.
//
// Runs the same PaRiS cluster and closed-loop workload on the thread
// backend with 1, 2 and 4 worker threads (plus one deterministic sim-backend
// reference point) and records the curve in BENCH_realtime.json. On
// multi-core hardware throughput rises with workers; the JSON captures
// `hardware_concurrency` so a single-core CI run is not mistaken for a
// scaling regression.
//
// Environment knobs: PARIS_BENCH_FAST=1, PARIS_BENCH_SEED, PARIS_BENCH_OUT.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace paris;
using namespace paris::bench;

namespace {

ExperimentConfig scaling_config() {
  ExperimentConfig cfg;
  cfg.system = System::kParis;
  cfg.num_dcs = 3;
  cfg.num_partitions = 12;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.seed = bench_seed();
  cfg.warmup_us = fast_mode() ? 100'000 : 250'000;
  cfg.measure_us = fast_mode() ? 300'000 : 1'000'000;
  return cfg;
}

struct Point {
  std::uint32_t workers;  ///< 0 = sim reference
  ExperimentResult result;
};

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  print_title("realtime_scaling — ThreadRuntime worker threads vs throughput",
              "same cluster/workload; workers swept 1 -> 4 (hw concurrency " +
                  std::to_string(hw) + ")");

  std::vector<Point> points;

  // Deterministic sim-backend reference under the identical workload.
  {
    ExperimentConfig cfg = scaling_config();
    cfg.runtime = runtime::Kind::kSim;
    cfg.aws_latency = false;
    std::printf("%-12s ", "sim-ref");
    Point p{0, workload::run_experiment(cfg)};
    std::printf("%10.1f ktx/s  p50 %6.2f ms  p99 %6.2f ms  wall %5.1f s\n",
                p.result.throughput_tx_s / 1000.0, p.result.latency_us.p50 / 1000.0,
                p.result.latency_us.p99 / 1000.0, p.result.wall_seconds);
    points.push_back(std::move(p));
  }

  for (const std::uint32_t w : {1u, 2u, 4u}) {
    ExperimentConfig cfg = scaling_config();
    cfg.runtime = runtime::Kind::kThreads;
    cfg.worker_threads = w;
    std::printf("workers=%-4u ", w);
    std::fflush(stdout);
    Point p{w, workload::run_experiment(cfg)};
    std::printf("%10.1f ktx/s  p50 %6.2f ms  p99 %6.2f ms  wall %5.1f s\n",
                p.result.throughput_tx_s / 1000.0, p.result.latency_us.p50 / 1000.0,
                p.result.latency_us.p99 / 1000.0, p.result.wall_seconds);
    points.push_back(std::move(p));
  }

  const char* path = std::getenv("PARIS_BENCH_OUT");
  if (path == nullptr) path = "BENCH_realtime.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"realtime_scaling\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"cluster\": {\"dcs\": 3, \"partitions\": 12, \"replication\": 2, "
                  "\"sessions_per_process\": 2},\n");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"runtime\": \"%s\", \"workers\": %u, \"loop_mode\": \"%s\", "
                 "\"throughput_tx_s\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"committed\": %llu}%s\n",
                 p.workers == 0 ? "sim" : "threads", p.workers, loop_mode(scaling_config()),
                 p.result.throughput_tx_s, p.result.latency_us.p50 / 1000.0,
                 p.result.latency_us.p99 / 1000.0,
                 static_cast<unsigned long long>(p.result.committed),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
